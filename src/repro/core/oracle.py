"""The user-facing PYTHIA facade.

:class:`Pythia` is what a runtime system links against.  It hides the
record/predict split behind one object:

- if no trace file exists (first run), it transparently records;
- if a trace file exists (subsequent runs), it loads it and answers
  predictions while following the submitted events.

One :class:`Pythia` serves a whole process; per-thread sessions are
addressed with the ``thread`` argument (the paper maintains one grammar
per thread).
"""

from __future__ import annotations

import os
import time
from typing import Hashable

from repro.core.events import Event, EventRegistry
from repro.core.explain import Explanation
from repro.core.predict import Prediction, PythiaPredict
from repro.core.record import PythiaRecord
from repro.core.trace_file import Trace, load_trace
from repro.obs import span
from repro.obs.accuracy import aggregate_stats
from repro.obs.drift import DriftBaseline, DriftMonitor
from repro.obs.flight import FlightRecorder
from repro.obs.log import get_logger
from repro.obs.profiler import tag_op

__all__ = ["Pythia"]

_log = get_logger("oracle")


class Pythia:
    """Record-or-predict oracle bound to a trace file.

    Parameters
    ----------
    trace_path:
        Where the reference trace lives (or will be written).
    mode:
        ``"auto"`` (default) records when the file is absent and predicts
        when present; ``"record"`` / ``"predict"`` force a mode.
    record_timestamps:
        Enables duration prediction on the next run.  Timestamps default
        to :func:`time.perf_counter` when not supplied by the caller.
    meta:
        Free-form metadata stored in the trace file when recording.
    """

    def __init__(
        self,
        trace_path: str | os.PathLike,
        *,
        mode: str = "auto",
        record_timestamps: bool = True,
        meta: dict | None = None,
        max_candidates: int = 64,
    ) -> None:
        if mode not in ("auto", "record", "predict"):
            raise ValueError(f"unknown mode {mode!r}")
        self.trace_path = os.fspath(trace_path)
        self.record_timestamps = record_timestamps
        self.meta = dict(meta or {})
        self._max_candidates = max_candidates
        self._finished = False
        # Resolve the mode exactly once, by *opening* the file rather than
        # testing existence first: two processes starting simultaneously
        # would otherwise race between os.path.exists and the later open.
        # Whoever loses the race simply records; concurrent recorders are
        # last-writer-wins on finish() (save_trace writes atomically via
        # rename), which is safe — both wrote a valid reference trace of
        # the same application.  A long-lived oracle daemon
        # (:mod:`repro.server`) sidesteps the race entirely.
        self.reference: Trace | None = None
        with span("oracle.open", mode=mode):
            if mode == "predict":
                self.reference = load_trace(self.trace_path)
            elif mode == "auto":
                try:
                    self.reference = load_trace(self.trace_path)
                    mode = "predict"
                except FileNotFoundError:
                    mode = "record"
        self.mode = mode
        _log.debug("oracle_opened", trace=self.trace_path, mode=mode)
        self._recorders: dict[int, PythiaRecord] = {}
        self._predictors: dict[int, PythiaPredict] = {}
        #: set by enable_drift(): one monitor shared by every thread's
        #: tracker, plus a flight recorder per tracker
        self._drift: DriftMonitor | None = None
        self._flight_capacity = 0
        self._flight_dump_dir: str | None = None
        if self.reference is not None:
            self.registry = self.reference.registry
        else:
            self.registry = EventRegistry()

    # ------------------------------------------------------------------

    @property
    def recording(self) -> bool:
        """True in record mode (first execution)."""
        return self.mode == "record"

    @property
    def predicting(self) -> bool:
        """True in predict mode (subsequent executions)."""
        return self.mode == "predict"

    def _recorder(self, thread: int) -> PythiaRecord:
        rec = self._recorders.get(thread)
        if rec is None:
            rec = PythiaRecord(self.registry, record_timestamps=self.record_timestamps)
            self._recorders[thread] = rec
        return rec

    def _predictor(self, thread: int) -> PythiaPredict:
        pred = self._predictors.get(thread)
        if pred is None:
            assert self.reference is not None
            tt = self.reference.threads.get(thread)
            if tt is None:
                raise KeyError(f"reference trace has no thread {thread}")
            pred = PythiaPredict(
                tt.grammar, tt.timing, max_candidates=self._max_candidates
            )
            self._watch(thread, pred)
            self._predictors[thread] = pred
        return pred

    def _watch(self, thread: int, pred: PythiaPredict) -> None:
        """Attach the facade's drift monitor / flight recorder (if
        enabled) to one tracker — existing and future alike."""
        if self._drift is not None and pred.drift is None:
            pred.attach_drift(self._drift)
        if self._flight_capacity and pred.flight is None:
            stem = os.path.splitext(os.path.basename(self.trace_path))[0]
            pred.attach_flight(
                FlightRecorder(
                    self._flight_capacity,
                    session=f"{stem}.t{thread}",
                    stride=self._drift.stride if self._drift is not None else 32,
                    dump_dir=self._flight_dump_dir,
                )
            )

    # ------------------------------------------------------------------
    # the runtime-system API
    # ------------------------------------------------------------------

    def event(
        self,
        name: str,
        payload: Hashable = None,
        *,
        timestamp: float | None = None,
        thread: int = 0,
    ) -> bool:
        """Notify the oracle that the application reached a key point.

        Returns True when the event matched the oracle's expectation
        (always True while recording).  A False return tells the runtime
        the tracker just lost or re-acquired its position — predictions
        made right now are not trustworthy (§III-E).
        """
        if self._finished:
            raise RuntimeError("oracle already finished")
        if self.recording:
            if timestamp is None and self.record_timestamps:
                timestamp = time.perf_counter()
            self._recorder(thread).record_event(name, payload, timestamp)
            return True
        terminal = self.registry.lookup(Event(name, payload))
        pred = self._predictor(thread)
        if terminal is None:
            # never seen in the reference run: the oracle has no
            # information; the runtime must rely on its heuristics
            return pred.observe_unknown(now=timestamp)
        return pred.observe(terminal, now=timestamp)

    def event_and_predict(
        self,
        name: str,
        payload: Hashable = None,
        *,
        distance: int = 1,
        thread: int = 0,
        with_time: bool = False,
        timestamp: float | None = None,
        require_match: bool = False,
    ) -> tuple[bool, Prediction | None]:
        """Submit one event and predict ``distance`` steps ahead — fused.

        Equivalent to :meth:`event` followed by :meth:`predict` (same
        counters, same accuracy scoring), but routed through the
        tracker's fused fast path so the successor expansion computed by
        the predict half is reused by the next observation.  In record
        mode the event is recorded and ``(True, None)`` is returned.
        With ``require_match`` the predict half is skipped when the event
        did not match the oracle's expectation (§III-E: fresh-resync
        predictions are not trustworthy).
        """
        if self._finished:
            raise RuntimeError("oracle already finished")
        if self.recording:
            if timestamp is None and self.record_timestamps:
                timestamp = time.perf_counter()
            self._recorder(thread).record_event(name, payload, timestamp)
            return True, None
        terminal = self.registry.lookup(Event(name, payload))
        pred = self._predictor(thread)
        if terminal is None:
            return pred.observe_unknown(now=timestamp), None
        return pred.observe_and_predict(
            terminal,
            distance,
            with_time=with_time,
            now=timestamp,
            require_match=require_match,
        )

    def predict(
        self, distance: int = 1, *, thread: int = 0, with_time: bool = False
    ) -> Prediction | None:
        """Predict the event ``distance`` steps ahead (predict mode only)."""
        if not self.predicting:
            return None
        return self._predictor(thread).predict(distance, with_time=with_time)

    def predict_duration(self, distance: int = 1, *, thread: int = 0) -> float | None:
        """Predict the delay until the event ``distance`` steps ahead."""
        if not self.predicting:
            return None
        return self._predictor(thread).predict_duration(distance)

    def explain(
        self,
        distance: int = 1,
        *,
        thread: int = 0,
        top_k: int = 3,
        with_time: bool = False,
    ) -> Explanation | None:
        """Provenance of :meth:`predict`: which candidate progress
        sequences back the top-k predicted events, with what weights.

        Read-only and side-effect free — ``events[0]`` is exactly what
        ``predict(distance)`` would return right now; ``None`` when the
        oracle is lost or recording.  Serialize with
        :meth:`~repro.core.explain.Explanation.to_obj`, passing
        ``self.registry.name`` for human-readable event names.
        """
        if not self.predicting:
            return None
        return self._predictor(thread).explain(
            distance, top_k=top_k, with_time=with_time
        )

    # ------------------------------------------------------------------
    # drift monitoring + flight recording
    # ------------------------------------------------------------------

    def enable_drift(
        self,
        baseline: DriftBaseline | None = None,
        *,
        flight: int = 256,
        dump_dir: str | None = None,
        **monitor_kwargs,
    ) -> DriftMonitor | None:
        """Turn on drift monitoring (and flight recording) for this oracle.

        One :class:`~repro.obs.drift.DriftMonitor` is shared by every
        thread's tracker (per-tracker deltas, one alarm state); each
        tracker additionally gets a :class:`~repro.obs.flight.FlightRecorder`
        of ``flight`` entries (0 disables).  Extra keyword arguments go
        to the monitor (``stride``, ``alpha``, thresholds…).  Returns
        the monitor — register fallback hooks with
        :meth:`~repro.obs.drift.DriftMonitor.on_transition` — or ``None``
        in record mode.  Idempotent: a second call returns the monitor
        already installed.
        """
        if not self.predicting:
            return None
        if self._drift is None:
            self._drift = DriftMonitor(baseline, **monitor_kwargs)
            self._flight_capacity = flight
            self._flight_dump_dir = dump_dir
            for thread, pred in self._predictors.items():
                self._watch(thread, pred)
        return self._drift

    def drift_report(self) -> dict:
        """The drift monitor's report (empty dict before enable_drift)."""
        if self._drift is None:
            return {}
        return self._drift.report()

    def flight_journal(self, thread: int = 0) -> list[dict]:
        """This thread's flight-recorder journal (empty when disabled)."""
        pred = self._predictors.get(thread)
        if pred is None or pred.flight is None:
            return []
        return pred.flight.entries()

    def describe(self, prediction: Prediction | None) -> str:
        """Human-readable form of a prediction (for logs and examples)."""
        if prediction is None:
            return "<no prediction: oracle is lost>"
        if prediction.terminal is None:
            return f"<end of execution, p={prediction.probability:.2f}>"
        name = self.registry.name(prediction.terminal)
        eta = f", eta={prediction.eta:.6f}" if prediction.eta is not None else ""
        return f"<{name}, p={prediction.probability:.2f}{eta}>"

    def finish(self) -> Trace | None:
        """End the execution.

        In record mode, freezes all per-thread grammars, writes the trace
        file and returns the trace; in predict mode returns ``None``.
        """
        if self._finished:
            raise RuntimeError("oracle already finished")
        self._finished = True
        if not self.recording:
            for pred in self._predictors.values():
                pred.flush_metrics()
            return None
        trace = Trace(registry=self.registry, meta=self.meta)
        for tid, rec in sorted(self._recorders.items()):
            trace.threads[tid] = rec.finish()
        with span("oracle.save_trace", path=self.trace_path), tag_op("save_trace"):
            trace.save(self.trace_path)
        _log.info(
            "trace_recorded",
            trace=self.trace_path,
            events=trace.event_count,
            threads=len(trace.threads),
        )
        return trace

    # ------------------------------------------------------------------

    def stats(self, thread: int | None = None) -> dict:
        """Tracking counters and accuracy report (predict mode).

        With ``thread=None`` (the default) the counters of **every**
        thread followed so far are aggregated; pass a thread id for one
        thread's view (the pre-observability behaviour).  Both shapes
        match the daemon's per-session ``stats`` op.
        """
        if not self.predicting:
            return {}
        if thread is not None:
            return self._predictor(thread).stats()
        reports = [pred.stats() for _tid, pred in sorted(self._predictors.items())]
        if not reports:
            return self._predictor(0).stats() if 0 in self.reference.threads else {}
        return aggregate_stats(reports)
