"""On-the-fly grammar reduction of event sequences (§II-A of the paper).

PYTHIA-RECORD compresses the per-thread event sequence into a context-free
grammar whose only derivable word is the trace.  The algorithm is Sequitur
[Nevill-Manning & Witten 1997] extended with *consecutive-repetition
exponents* (the extension Cyclitur introduced and the paper adopts): each
body element carries an exponent, so a loop of 100 iterations is one node
``A^100`` instead of 100 nodes.

The grammar maintains the paper's three invariants after every appended
event:

1. **Rule utility** — every non-root rule is used at least twice, counting
   a use with exponent ``e`` as ``e`` usages ("each non-terminal symbol
   represents a sequence that repeats in the trace").
2. **Digram uniqueness** — every ordered couple of adjacent symbols appears
   at most once among all rule bodies.  With exponents, two sites
   ``x^n y^m`` and ``x^p y^k`` share the couple ``(x, y)``; the shared part
   ``x^min(n,p) y^min(m,k)`` is factored into a rule and residual exponents
   stay in place — exactly the Fig. 3 behaviour (``b^5 c`` against
   ``A -> b^3 c^2`` factors ``C -> b^3 c``).
3. **Adjacent merging** — equal adjacent symbols merge exponents
   (``a^n a^m`` becomes ``a^{n+m}``), so no symbol ever neighbours itself.

The implementation appends terminals at the root's end and restores the
invariants with a local repair loop (digram check / factor / merge /
inline), which is operationally equivalent to the paper's recursive
"remove the last symbol and re-add the non-terminal" description.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.core.symbols import Rule, Symbol, SymbolUse, is_terminal

DigramKey = tuple

__all__ = ["Grammar", "GrammarError"]


class GrammarError(Exception):
    """Raised when an invariant check fails (a bug, or a corrupted trace)."""


class Grammar:
    """A mutable Sequitur-with-exponents grammar.

    Use :meth:`append` to feed the event sequence one terminal at a time;
    the grammar always represents exactly the sequence appended so far
    (:meth:`unfold` recovers it).
    """

    def __init__(self) -> None:
        self._next_rid = 0
        #: observability counters (monotone; rules_created counts the root
        #: and is never decremented when a rule is later inlined away)
        self.rules_created = 0
        self.exponent_merges = 0
        self.root = self._new_rule()
        #: ordered couple of symbols -> left node of its unique occurrence
        self._digrams: dict[DigramKey, SymbolUse] = {}
        #: rules whose usage decreased and may need inlining
        self._maybe_useless: list[Rule] = []
        #: live rules indexed by id (includes the root)
        self.rules: dict[int, Rule] = {self.root.rid: self.root}
        self._length = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of terminals appended so far (length of the trace)."""
        return self._length

    @property
    def rule_count(self) -> int:
        """Number of rules, root included (Table I's "# rules" counts these)."""
        return len(self.rules)

    def append(self, terminal: int) -> None:
        """Append one terminal event id to the represented sequence."""
        if not is_terminal(terminal) or terminal < 0:
            raise TypeError(f"terminal event id must be a non-negative int, got {terminal!r}")
        self._length += 1
        root = self.root
        last = root.last
        if last is not None and last.symbol == terminal:
            last.exp += 1
            self.exponent_merges += 1
            return
        self._link_after(root.guard.prev, terminal, 1, root)
        if last is not None:
            self._check_digram(last)
        self._drain_useless()

    def extend(self, terminals: Iterable[int]) -> None:
        """Append every terminal of ``terminals`` in order."""
        for t in terminals:
            self.append(t)

    def unfold(self) -> list[int]:
        """Expand the grammar back into the full terminal sequence.

        Iterative (explicit stack) so that adversarial traces cannot hit
        Python's recursion limit.  Each stack entry ``(node, reps)`` means
        "expand ``node`` ``reps`` more times, then continue at
        ``node.next``".
        """
        out: list[int] = []
        stack: list[tuple[SymbolUse, int]] = []
        first = self.root.first
        if first is None:
            return out
        stack.append((first, first.exp))
        while stack:
            node, reps = stack.pop()
            if reps == 0:
                nxt = node.next
                if not nxt.is_guard():
                    stack.append((nxt, nxt.exp))
                continue
            sym = node.symbol
            if is_terminal(sym):
                out.extend([sym] * reps)
                nxt = node.next
                if not nxt.is_guard():
                    stack.append((nxt, nxt.exp))
            else:
                stack.append((node, reps - 1))  # continuation after one expansion
                body_first = sym.first
                if body_first is not None:
                    stack.append((body_first, body_first.exp))
        return out

    def dump(self, names: Callable[[int], str] | None = None) -> str:
        """Render the grammar in the paper's notation (one rule per line)."""
        names = names or str

        def sym_str(node: SymbolUse) -> str:
            s = node.symbol
            text = s.name if isinstance(s, Rule) else names(s)
            if node.exp != 1:
                text += f"^{node.exp}"
            return text

        lines = []
        for rid in sorted(self.rules):
            rule = self.rules[rid]
            body = " ".join(sym_str(n) for n in rule) or "<empty>"
            lines.append(f"{rule.name} -> {body}")
        return "\n".join(lines)

    def iter_rules(self) -> Iterator[Rule]:
        """Iterate over live rules (root first)."""
        yield self.root
        for rid in sorted(self.rules):
            if rid != self.root.rid:
                yield self.rules[rid]

    # ------------------------------------------------------------------
    # invariant checking (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`GrammarError` if any paper invariant is violated."""
        seen_digrams: dict[DigramKey, SymbolUse] = {}
        usage: dict[int, int] = {rid: 0 for rid in self.rules}
        for rule in self.rules.values():
            prev: SymbolUse | None = None
            for node in rule:
                if node.owner is not rule:
                    raise GrammarError(f"node {node!r} has wrong owner in {rule.name}")
                if node.exp < 1:
                    raise GrammarError(f"non-positive exponent on {node!r} in {rule.name}")
                sym = node.symbol
                if isinstance(sym, Rule):
                    if sym.rid not in self.rules:
                        raise GrammarError(f"{rule.name} references dead rule {sym.name}")
                    usage[sym.rid] += node.exp
                    if node not in sym.use_nodes:
                        raise GrammarError(f"use-node index misses {node!r} for {sym.name}")
                if prev is not None:
                    if prev.symbol == sym:
                        raise GrammarError(
                            f"adjacent equal symbols in {rule.name}: {prev!r} {node!r}"
                        )
                    key = (prev.symbol, sym)
                    if key in seen_digrams:
                        raise GrammarError(f"duplicate digram {key!r} in grammar")
                    seen_digrams[key] = prev
                    registered = self._digrams.get(key)
                    if registered is not prev:
                        raise GrammarError(f"digram index stale for {key!r}")
                prev = node
        for rid, count in usage.items():
            rule = self.rules[rid]
            if rule.usage != count:
                raise GrammarError(
                    f"usage counter of {rule.name} is {rule.usage}, recount says {count}"
                )
            if rid != self.root.rid and count < 2:
                raise GrammarError(f"rule {rule.name} used {count} < 2 times")
        for key, node in self._digrams.items():
            if node.owner is None:
                raise GrammarError(f"digram index holds dead node for {key!r}")
            if seen_digrams.get(key) is not node:
                raise GrammarError(f"digram index entry {key!r} points at wrong node")

    # ------------------------------------------------------------------
    # structural primitives
    # ------------------------------------------------------------------

    def _new_rule(self) -> Rule:
        rule = Rule(self._next_rid)
        self._next_rid += 1
        self.rules_created += 1
        if hasattr(self, "rules"):
            self.rules[rule.rid] = rule
        return rule

    def _add_usage(self, sym: Symbol, delta: int) -> None:
        if isinstance(sym, Rule) and delta:
            sym.usage += delta
            if delta < 0:
                self._maybe_useless.append(sym)

    def _link_after(self, after: SymbolUse, sym: Symbol, exp: int, rule: Rule) -> SymbolUse:
        """Splice a new node carrying ``sym^exp`` right after ``after``."""
        node = SymbolUse(sym, exp)
        node.owner = rule
        nxt = after.next
        node.prev = after
        node.next = nxt
        after.next = node
        nxt.prev = node
        if isinstance(sym, Rule):
            sym.use_nodes.add(node)
            self._add_usage(sym, exp)
        return node

    def _unlink(self, node: SymbolUse) -> None:
        """Remove ``node`` from its body; digram entries must be forgotten first."""
        node.prev.next = node.next
        node.next.prev = node.prev
        sym = node.symbol
        if isinstance(sym, Rule):
            sym.use_nodes.discard(node)
            self._add_usage(sym, -node.exp)
        node.owner = None
        node.prev = node.next = None

    def _forget(self, left: SymbolUse | None) -> None:
        """Drop the digram-index entry registered for ``(left, left.next)``."""
        if left is None or left.owner is None or left.is_guard():
            return
        right = left.next
        if right is None or right.is_guard():
            return
        key = (left.symbol, right.symbol)
        if self._digrams.get(key) is left:
            del self._digrams[key]

    # ------------------------------------------------------------------
    # repair loop: digram uniqueness + merging + factoring
    # ------------------------------------------------------------------

    def _check_digram(self, left: SymbolUse | None) -> None:
        """Restore invariants for the couple starting at ``left``."""
        if left is None or left.owner is None or left.is_guard():
            return
        right = left.next
        if right is None or right.is_guard():
            return
        if left.symbol == right.symbol:
            # invariant 3: merge exponents (a^n a^m -> a^{n+m})
            self.exponent_merges += 1
            self._forget(left)
            self._forget(right)
            self._add_usage(left.symbol, right.exp)  # exponent moves onto `left`...
            left.exp += right.exp
            self._unlink(right)  # ...and _unlink takes it back off `right`: net 0
            self._check_digram(left)
            return
        key = (left.symbol, right.symbol)
        found = self._digrams.get(key)
        if found is None or found.owner is None:
            self._digrams[key] = left
            return
        if found is left:
            return
        if found.next is None or found.next.is_guard() or found.next.symbol != right.symbol:
            # stale entry (should not happen); re-point and continue
            self._digrams[key] = left
            return
        self._factor(found, left)

    def _is_exact_couple_body(self, left: SymbolUse, en: int, em: int) -> bool:
        """True if ``left`` and its successor form an entire non-root rule body
        with exactly the shared exponents ``(en, em)`` — the reuse case."""
        rule = left.owner
        assert rule is not None
        if rule is self.root:
            return False
        return (
            left.prev.is_guard()
            and left.next.next.is_guard()
            and left.exp == en
            and left.next.exp == em
        )

    def _factor(self, occ1: SymbolUse, occ2: SymbolUse) -> None:
        """Factor two occurrences of the same couple into a rule (§II-A)."""
        x = occ1.symbol
        y = occ1.next.symbol
        en = min(occ1.exp, occ2.exp)
        em = min(occ1.next.exp, occ2.next.exp)

        reuse: Rule | None = None
        for occ in (occ1, occ2):
            if self._is_exact_couple_body(occ, en, em):
                reuse = occ.owner
                break

        if reuse is None:
            target = self._new_rule()
            nx = self._link_after(target.guard, x, en, target)
            self._link_after(nx, y, em, target)
            self._digrams[(x, y)] = nx
            sites = [occ1, occ2]
        else:
            target = reuse
            self._digrams[(x, y)] = target.first  # keep index on the body copy
            sites = [occ for occ in (occ1, occ2) if occ.owner is not target]

        recheck: list[SymbolUse] = []
        for occ in sites:
            recheck.extend(self._substitute(occ, target, en, em))
        for node in recheck:
            self._check_digram(node)

    def _substitute(
        self, left: SymbolUse, target: Rule, en: int, em: int
    ) -> list[SymbolUse]:
        """Replace ``x^en y^em`` (inside ``x^n y^m`` at ``left``) by ``target``.

        Residual exponents ``x^{n-en}`` / ``y^{m-em}`` stay in place.
        Returns boundary nodes whose digrams must be re-checked.
        """
        right = left.next
        rule = left.owner
        assert rule is not None and right is not None
        prev = left.prev
        self._forget(prev)
        self._forget(left)
        self._forget(right)

        use = self._link_after(left, target, 1, rule)

        self._add_usage(left.symbol, -en)
        left.exp -= en
        if left.exp == 0:
            self._unlink(left)
        self._add_usage(right.symbol, -em)
        right.exp -= em
        if right.exp == 0:
            self._unlink(right)

        recheck = []
        for node in (prev, use.prev, use, use.next):
            if node is not None and node.owner is not None and not node.is_guard():
                if node not in recheck:
                    recheck.append(node)
        return recheck

    # ------------------------------------------------------------------
    # rule utility (invariant 1)
    # ------------------------------------------------------------------

    def _drain_useless(self) -> None:
        """Inline every rule whose usage dropped below 2 (paper Fig. 3f)."""
        while self._maybe_useless:
            rule = self._maybe_useless.pop()
            if rule.rid not in self.rules or rule is self.root:
                continue
            if rule.usage >= 2:
                continue
            if rule.usage <= 0:
                raise GrammarError(
                    f"rule {rule.name} usage dropped to {rule.usage}; "
                    "grammar bookkeeping is corrupted"
                )
            self._inline(rule)

    def _inline(self, rule: Rule) -> None:
        """Splice the body of a once-used rule into its single use site."""
        uses = [n for n in rule.use_nodes if n.owner is not None]
        if len(uses) != 1 or uses[0].exp != 1:
            return  # defensive: only a single exp-1 use can be inlined
        use = uses[0]
        host = use.owner
        assert host is not None
        prev = use.prev
        nxt = use.next
        self._forget(prev)
        self._forget(use)
        first = rule.first
        last = rule.last
        del self.rules[rule.rid]
        self._unlink(use)
        if first is None:
            # empty body (cannot normally happen): nothing to splice
            self._check_digram(prev)
            return
        # splice the body nodes (keeping internal digram entries valid)
        node = first
        while True:
            node.owner = host
            if node is last:
                break
            node = node.next
        prev.next = first
        first.prev = prev
        last.next = nxt
        nxt.prev = last
        self._check_digram(prev)
        self._check_digram(last)
