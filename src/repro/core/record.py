"""PYTHIA-RECORD: event intake during the reference execution (§II-A).

The recorder owns one grammar per thread of the traced application (the
paper: "a grammar that represents the program execution is maintained for
each thread").  Each submitted event appends one terminal; optionally its
timestamp is logged sequentially, and :meth:`PythiaRecord.finish` replays
the trace to build the duration table (§II-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.events import Event, EventRegistry
from repro.core.frozen import FrozenGrammar
from repro.core.grammar import Grammar
from repro.core.timing import TimingTable
from repro.obs import metrics as obs_metrics
from repro.obs import span

#: registry flushes happen every this many recorded events (the hot path
#: only bumps a local int; see the README's overhead benchmark)
METRICS_FLUSH_EVERY = 4096


@dataclass(slots=True)
class ThreadTrace:
    """The frozen outcome of recording one thread."""

    grammar: FrozenGrammar
    timing: TimingTable | None
    event_count: int


class PythiaRecord:
    """Single-thread recorder: feeds events into an on-line grammar.

    Parameters
    ----------
    registry:
        Shared event registry (one per process); created if omitted.
    record_timestamps:
        When True, every event must come with a timestamp and the
        finished trace includes a duration table.
    """

    def __init__(
        self,
        registry: EventRegistry | None = None,
        *,
        record_timestamps: bool = False,
    ) -> None:
        self.registry = registry if registry is not None else EventRegistry()
        self.record_timestamps = record_timestamps
        self.grammar = Grammar()
        self._timestamps: list[float] = []
        self._finished = False
        reg = obs_metrics.get_registry()
        self._m_events = reg.counter(
            "pythia_record_events_total", help="Events ingested by PYTHIA-RECORD"
        )
        self._m_rules = reg.counter(
            "pythia_record_rules_created_total", help="Grammar rules created while recording"
        )
        self._m_merges = reg.counter(
            "pythia_record_exponent_merges_total",
            help="Consecutive-repetition exponent merges while recording",
        )
        self._unflushed_events = 0
        self._flushed_rules = 0
        self._flushed_merges = 0

    @property
    def event_count(self) -> int:
        """Number of events recorded so far."""
        return len(self.grammar)

    @property
    def rule_count(self) -> int:
        """Current number of grammar rules (Table I's "# rules")."""
        return self.grammar.rule_count

    def record(self, terminal: int, timestamp: float | None = None) -> None:
        """Submit one pre-interned event id."""
        if self._finished:
            raise RuntimeError("recorder already finished")
        self.grammar.append(terminal)
        self._unflushed_events += 1
        if self._unflushed_events >= METRICS_FLUSH_EVERY:
            self.flush_metrics()
        if self.record_timestamps:
            if timestamp is None:
                raise ValueError("record_timestamps=True requires a timestamp per event")
            if self._timestamps and timestamp < self._timestamps[-1]:
                raise ValueError("timestamps must be non-decreasing")
            self._timestamps.append(float(timestamp))

    def record_event(
        self, name: str, payload: Hashable = None, timestamp: float | None = None
    ) -> int:
        """Intern ``(name, payload)`` and record it; returns the terminal id."""
        terminal = self.registry.intern(Event(name, payload))
        self.record(terminal, timestamp)
        return terminal

    def flush_metrics(self) -> None:
        """Publish batched deltas to the process metrics registry."""
        if self._unflushed_events:
            self._m_events.inc(self._unflushed_events)
            self._unflushed_events = 0
        rules = self.grammar.rules_created
        if rules != self._flushed_rules:
            self._m_rules.inc(rules - self._flushed_rules)
            self._flushed_rules = rules
        merges = self.grammar.exponent_merges
        if merges != self._flushed_merges:
            self._m_merges.inc(merges - self._flushed_merges)
            self._flushed_merges = merges

    def finish(self) -> ThreadTrace:
        """Freeze the grammar (and build the timing table if recording times)."""
        self._finished = True
        self.flush_metrics()
        with span("record.freeze"):
            frozen = FrozenGrammar.from_grammar(self.grammar)
        timing: TimingTable | None = None
        if self.record_timestamps and self._timestamps:
            with span("record.timing_table", events=len(self._timestamps)):
                timing = TimingTable.from_replay(frozen, self._timestamps)
        return ThreadTrace(grammar=frozen, timing=timing, event_count=len(self.grammar))
