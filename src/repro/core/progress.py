"""Progress sequences: locating and advancing positions in the grammar.

A *progress sequence* (§II-B, Fig. 4) denotes one occurrence of a terminal
in the trace by the path from the terminal occurrence up towards the root
of the grammar.  We represent it as a tuple of steps, **bottom-first**:

``step = (rule id, body index, iteration)``

- ``chain[0]`` points at a terminal: ``bodies[rid][idx]`` is a terminal.
- ``chain[k+1]`` is the use site of ``chain[k]``'s rule:
  ``bodies[chain[k+1].rid][chain[k+1].idx]`` references rule
  ``chain[k].rid``.
- ``iteration`` is the 0-based repetition counter of that use (symbol uses
  carry exponents); ``None`` means *unknown* — the tracker attached
  mid-stream and cannot know which loop iteration the application is in.

A chain whose top step lives in the root rule is *complete*: it denotes a
single occurrence in the trace.  A shorter chain is *partial* (the paper's
"progress sequences containing only the terminal", §II-B2): it stands for
every occurrence compatible with its suffix, and it gets extended lazily
when the tracker needs to know what comes after the top rule — weighting
each possible use site by its occurrence count (§II-C).

:func:`successors` is the depth-first traversal of Fig. 5 generalised to
sets: it returns every possible next position with relative weights, with
:data:`END` marking the end of the reference trace.

The traversal is split in two layers so it can be memoized: the grammar
is immutable after freezing, so the successor set of a chain at weight
1.0 (:func:`successors_rel`) is a pure function of the chain —
:class:`~repro.core.successor.SuccessorMachine` caches exactly that, and
:func:`successors` scales the relative result by the caller's weight.
Cached and uncached paths therefore perform the *same* float
multiplications and produce byte-identical weights.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.frozen import ROOT, FrozenGrammar, decode_rule, is_rule_sym

Step = tuple[int, int, int | None]
Chain = tuple[Step, ...]

END: Chain = ()
"""Sentinel chain: the reference execution ends here."""


def terminal_of(fg: FrozenGrammar, chain: Chain) -> int | None:
    """The terminal event id a chain points at (``None`` for :data:`END`)."""
    if chain is END or not chain:
        return None
    rid, idx, _it = chain[0]
    sym, _exp = fg.bodies[rid][idx]
    if is_rule_sym(sym):
        raise ValueError("chain bottom does not point at a terminal")
    return sym


def descend(fg: FrozenGrammar, rid: int, idx: int, it: int | None = 0) -> Chain:
    """Chain from position ``(rid, idx)`` down to its first terminal.

    Newly entered levels start at iteration 0; the top step carries ``it``.
    """
    steps_top_down: list[Step] = []
    r, j = rid, idx
    top = True
    while True:
        sym, _exp = fg.bodies[r][j]
        steps_top_down.append((r, j, it if top else 0))
        top = False
        if not is_rule_sym(sym):
            break
        r = decode_rule(sym)
        if not fg.bodies[r]:
            raise ValueError(f"rule {r} has an empty body")
        j = 0
    return tuple(reversed(steps_top_down))


def start_chains(fg: FrozenGrammar, terminal: int) -> list[tuple[Chain, float]]:
    """All partial chains for one observed terminal, occurrence-weighted.

    This is the §II-B2 restart: when attaching mid-stream (or after an
    unexpected event) the tracker seeds one single-step chain per
    occurrence of the terminal, weighted by how often that occurrence
    appears in the reference trace.
    """
    positions = fg.terminal_positions.get(terminal, ())
    if not positions:
        return []
    weights = [fg.position_occurrences(rid, idx) for rid, idx in positions]
    total = float(sum(weights))
    out: list[tuple[Chain, float]] = []
    for (rid, idx), w in zip(positions, weights):
        _sym, exp = fg.bodies[rid][idx]
        it: int | None = 0 if exp == 1 else None
        out.append((((rid, idx, it),), w / total))
    return out


def initial_chain(fg: FrozenGrammar) -> Chain:
    """The complete chain pointing at the very first terminal of the trace."""
    if not fg.bodies[ROOT]:
        return END
    return descend(fg, ROOT, 0)


def successors_rel(
    fg: FrozenGrammar,
    chain: Chain,
    *,
    descend_fn: Callable[[int, int], Chain] | None = None,
) -> tuple[tuple[Chain, float], ...]:
    """:func:`successors` at weight 1.0 — the memoizable form.

    A pure function of ``(fg, chain)``: the relative weights sum to 1.0
    and callers (or a :class:`~repro.core.successor.SuccessorMachine`
    cache) scale them by the actual candidate weight.  ``descend_fn``
    optionally replaces the ``descend(fg, rid, idx)`` calls with a cached
    equivalent; it must return exactly what :func:`descend` returns.
    """
    if chain is END or not chain:
        return ((END, 1.0),)
    out: list[tuple[Chain, float]] = []
    rid, idx, it = chain[0]
    _sym, exp = fg.bodies[rid][idx]
    w = 1.0
    if exp > 1:
        if it is not None:
            if it + 1 < exp:
                return ((((rid, idx, it + 1),) + chain[1:], 1.0),)
        else:
            # unknown repetition of the terminal itself: may repeat...
            out.append((chain, w * (exp - 1) / exp))
            w = w / exp  # ...or move on with the rest of the weight
    if descend_fn is None:
        descend_fn = lambda r, j: descend(fg, r, j)  # noqa: E731
    _advance(fg, chain, 0, w, out, descend_fn)
    return tuple(out)


def successors(
    fg: FrozenGrammar, chain: Chain, weight: float = 1.0
) -> list[tuple[Chain, float]]:
    """Every possible next-terminal chain, with relative weights.

    Weights sum to ``weight``.  Branches appear when an iteration counter
    is unknown (loop may continue or exit — weighted ``(e-1)/e`` against
    ``1/e`` for a use with exponent ``e``) or when a partial chain must be
    extended through several possible use sites (occurrence-weighted).
    :data:`END` is returned when the reference trace may end here.
    """
    rel = successors_rel(fg, chain)
    if weight == 1.0:
        return list(rel)
    return [(c, w * weight) for c, w in rel]


def _advance(
    fg: FrozenGrammar,
    chain: Chain,
    level: int,
    w: float,
    out: list[tuple[Chain, float]],
    descend_fn: Callable[[int, int], Chain],
) -> None:
    """The symbol at ``chain[level]`` finished one expansion; emit successors."""
    if w <= 0.0:
        return
    rid, idx, it = chain[level]
    sym, exp = fg.bodies[rid][idx]
    if level > 0 and exp > 1:
        # a rule use with several repetitions: loop back or move on
        child = decode_rule(sym)
        if it is not None:
            if it + 1 < exp:
                out.append((descend_fn(child, 0) + ((rid, idx, it + 1),) + chain[level + 1 :], w))
                return
        else:
            out.append(
                (descend_fn(child, 0) + ((rid, idx, None),) + chain[level + 1 :], w * (exp - 1) / exp)
            )
            w = w / exp
    if idx + 1 < fg.body_len(rid):
        out.append((descend_fn(rid, idx + 1) + chain[level + 1 :], w))
        return
    if level + 1 < len(chain):
        _advance(fg, chain, level + 1, w, out, descend_fn)
        return
    # the chain top finished: either the trace ends, or the chain is
    # partial and must be extended through the uses of rule `rid`
    if rid == ROOT:
        out.append((END, w))
        return
    uses = fg.uses[rid]
    if not uses:
        out.append((END, w))
        return
    weights = [fg.position_occurrences(host, hidx) for host, hidx in uses]
    total = float(sum(weights))
    for (host, hidx), uw in zip(uses, weights):
        extended = chain[: level + 1] + ((host, hidx, None),)
        _advance(fg, extended, level + 1, w * uw / total, out, descend_fn)


def advance_exact(fg: FrozenGrammar, chain: Chain) -> Chain:
    """Deterministic advance for a complete chain with known iterations.

    Used by the timing replay (§II-C): starting from
    :func:`initial_chain`, repeated calls walk the whole reference trace.
    Raises if the chain is ambiguous (mid-stream chains are).
    """
    succ = successors(fg, chain)
    if len(succ) != 1:
        raise ValueError(f"chain {chain!r} is ambiguous: {len(succ)} successors")
    return succ[0][0]


def suffix_key(chain: Chain, depth: int | None = None) -> tuple[tuple[int, int], ...]:
    """Iteration-free key of the bottom ``depth`` steps (timing-table key)."""
    steps = chain if depth is None else chain[:depth]
    return tuple((rid, idx) for rid, idx, _it in steps)


def chain_is_complete(chain: Chain) -> bool:
    """True if the chain reaches the root rule."""
    return bool(chain) and chain[-1][0] == ROOT


def extend_matches(
    fg: FrozenGrammar, chains: Iterable[Chain], terminal: int
) -> list[Chain]:
    """Filter helper used in tests: chains whose bottom terminal matches."""
    return [c for c in chains if c is not END and terminal_of(fg, c) == terminal]
