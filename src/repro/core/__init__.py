"""Core PYTHIA oracle library.

This package implements the paper's primary contribution:

- :mod:`repro.core.events` — event model and interning registry;
- :mod:`repro.core.grammar` — on-the-fly grammar reduction of event
  sequences (Sequitur extended with consecutive-repetition exponents,
  §II-A of the paper);
- :mod:`repro.core.record` — PYTHIA-RECORD;
- :mod:`repro.core.frozen` — immutable grammar snapshot used for
  prediction;
- :mod:`repro.core.progress` — progress sequences (§II-B);
- :mod:`repro.core.predict` — PYTHIA-PREDICT (§II-B, §II-C);
- :mod:`repro.core.timing` — duration estimation (§II-C);
- :mod:`repro.core.trace_file` — on-disk trace format;
- :mod:`repro.core.oracle` — the user-facing facade.
"""

from repro.core.analysis import GrammarStats, analyze, loop_structure, terminal_histogram
from repro.core.compare import Divergence, ReplayReport, follow, similarity
from repro.core.events import Event, EventRegistry
from repro.core.grammar import Grammar, GrammarError
from repro.core.record import PythiaRecord
from repro.core.frozen import FrozenGrammar
from repro.core.predict import Prediction, PythiaPredict
from repro.core.timing import TimingTable
from repro.core.trace_file import (
    FORMAT_VERSION,
    Trace,
    TraceFormatError,
    load_trace,
    save_trace,
)
from repro.core.oracle import Pythia

__all__ = [
    "Divergence",
    "Event",
    "FORMAT_VERSION",
    "TraceFormatError",
    "EventRegistry",
    "GrammarStats",
    "ReplayReport",
    "analyze",
    "follow",
    "loop_structure",
    "similarity",
    "terminal_histogram",
    "FrozenGrammar",
    "Grammar",
    "GrammarError",
    "Prediction",
    "Pythia",
    "PythiaPredict",
    "PythiaRecord",
    "TimingTable",
    "Trace",
    "load_trace",
    "save_trace",
]
