"""Symbol model for the PYTHIA grammar.

A grammar symbol is either a *terminal* — represented by a plain ``int``
event id (see :class:`repro.core.events.EventRegistry`) — or a
*non-terminal* — represented by a :class:`Rule` object whose body is a
sequence of :class:`SymbolUse` nodes.

Rule bodies are circular doubly-linked lists around a *guard* node, the
classic Sequitur layout: splicing a node in or out is O(1), which the
on-line reduction algorithm of §II-A relies on.  Every body node carries a
repetition exponent (the paper's ``a^n`` notation): ``SymbolUse(a, 3)``
stands for ``aaa``.
"""

from __future__ import annotations

from typing import Iterator, Union

Symbol = Union[int, "Rule"]
"""A terminal (non-negative ``int``) or a non-terminal (:class:`Rule`)."""


def is_terminal(sym: Symbol) -> bool:
    """True if ``sym`` is a terminal event id."""
    return isinstance(sym, int)


class SymbolUse:
    """One element of a rule body: a symbol plus a repetition exponent.

    ``owner`` is the rule whose body contains this node, or ``None`` once
    the node has been unlinked (unlinked nodes are inert; algorithms use
    ``owner is None`` as a liveness test).
    """

    __slots__ = ("symbol", "exp", "prev", "next", "owner")

    def __init__(self, symbol: Symbol | None, exp: int = 1) -> None:
        self.symbol = symbol
        self.exp = exp
        self.prev: SymbolUse | None = None
        self.next: SymbolUse | None = None
        self.owner: Rule | None = None

    def is_guard(self) -> bool:
        """True for the sentinel node that closes a rule body's circle."""
        return self.symbol is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_guard():
            return "<guard>"
        name = self.symbol.name if isinstance(self.symbol, Rule) else str(self.symbol)
        return f"<{name}^{self.exp}>" if self.exp != 1 else f"<{name}>"


class Rule:
    """A non-terminal symbol and the body it expands to.

    ``usage`` is the paper's invariant-1 counter: the sum of the exponents
    of every :class:`SymbolUse` whose symbol is this rule.  A use with
    exponent ``e`` counts as ``e`` usages because it expands the rule ``e``
    times (this is what keeps the worked example of Fig. 3 consistent:
    ``B^2`` at the root counts as two usages of ``B``).
    """

    __slots__ = ("rid", "guard", "usage", "use_nodes")

    def __init__(self, rid: int) -> None:
        self.rid = rid
        guard = SymbolUse(None, 0)
        guard.prev = guard
        guard.next = guard
        guard.owner = self
        self.guard = guard
        self.usage = 0
        self.use_nodes: set[SymbolUse] = set()

    # -- structure --------------------------------------------------------

    @property
    def first(self) -> SymbolUse | None:
        """First body node, or ``None`` for an empty body."""
        node = self.guard.next
        return None if node is self.guard else node

    @property
    def last(self) -> SymbolUse | None:
        """Last body node, or ``None`` for an empty body."""
        node = self.guard.prev
        return None if node is self.guard else node

    def __iter__(self) -> Iterator[SymbolUse]:
        node = self.guard.next
        while node is not self.guard:
            nxt = node.next  # tolerate unlinking during iteration
            yield node
            node = nxt

    def __len__(self) -> int:
        return sum(1 for _ in self)

    @property
    def name(self) -> str:
        """Display name: ``R`` for the root (rule id 0), ``R<n>`` otherwise."""
        return "R" if self.rid == 0 else f"R{self.rid}"

    def body(self) -> list[tuple[Symbol, int]]:
        """Body as a list of ``(symbol, exponent)`` pairs (for tests/dumps)."""
        return [(n.symbol, n.exp) for n in self]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rule({self.name}, {self.body()!r})"
