"""On-disk trace format.

A *trace file* is what PYTHIA-RECORD stores "at the end of the execution"
and what PYTHIA-PREDICT reloads on the next run (§II).  It contains:

- the event registry (so ``(name, payload)`` pairs resolve to the same
  terminal ids across executions),
- one frozen grammar per recorded thread,
- optional per-thread timing tables,
- free-form metadata (application name, working set, ...).

The format is versioned JSON; files ending in ``.gz`` are gzipped.  JSON
keeps traces diffable and debuggable, which matters more here than raw
size — grammars are tiny compared to the traces they compress (Table I:
millions of events, tens of rules).
"""

from __future__ import annotations

import gzip
import json
import os
from dataclasses import dataclass, field
from typing import IO

from repro.core.events import EventRegistry
from repro.core.frozen import FrozenGrammar
from repro.core.record import ThreadTrace
from repro.core.timing import TimingTable

FORMAT_VERSION = 1

__all__ = ["Trace", "TraceFormatError", "load_trace", "save_trace", "FORMAT_VERSION"]


class TraceFormatError(ValueError):
    """The file is not a readable pythia trace.

    Raised for truncated or corrupt files (bad gzip stream, invalid
    JSON), for files that are valid JSON but not a pythia trace, and for
    trace versions this build does not know how to read.  Subclasses
    :class:`ValueError` so existing ``except ValueError`` callers keep
    working.  A missing file stays a :class:`FileNotFoundError` — the
    facade's auto mode depends on that distinction.
    """


@dataclass(slots=True)
class Trace:
    """A complete recorded reference execution (all threads)."""

    registry: EventRegistry
    threads: dict[int, ThreadTrace] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    # -- single-thread conveniences --------------------------------------

    def _only(self) -> ThreadTrace:
        if len(self.threads) != 1:
            raise ValueError(
                f"trace holds {len(self.threads)} threads; address one explicitly"
            )
        return next(iter(self.threads.values()))

    @property
    def grammar(self) -> FrozenGrammar:
        """Grammar of the only thread (single-thread traces)."""
        return self._only().grammar

    @property
    def timing(self) -> TimingTable | None:
        """Timing table of the only thread (single-thread traces)."""
        return self._only().timing

    @property
    def event_count(self) -> int:
        """Total events recorded across all threads."""
        return sum(t.event_count for t in self.threads.values())

    @property
    def rule_count(self) -> int:
        """Total grammar rules across all threads (Table I aggregates this)."""
        return sum(t.grammar.rule_count for t in self.threads.values())

    def thread(self, tid: int) -> ThreadTrace:
        """Trace of one thread."""
        return self.threads[tid]

    # -- (de)serialization ------------------------------------------------

    def to_obj(self) -> dict:
        """JSON-compatible representation."""
        return {
            "format": "pythia-trace",
            "version": FORMAT_VERSION,
            "meta": self.meta,
            "events": self.registry.to_obj(),
            "threads": {
                str(tid): {
                    "grammar": t.grammar.to_obj(),
                    "timing": t.timing.to_obj() if t.timing is not None else None,
                    "event_count": t.event_count,
                }
                for tid, t in self.threads.items()
            },
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "Trace":
        """Inverse of :meth:`to_obj`."""
        if obj.get("format") != "pythia-trace":
            raise TraceFormatError("not a pythia trace file")
        version = obj.get("version")
        if version != FORMAT_VERSION:
            if isinstance(version, int) and version > FORMAT_VERSION:
                raise TraceFormatError(
                    f"trace version {version} is newer than this build "
                    f"(reads version {FORMAT_VERSION}); upgrade to load it"
                )
            raise TraceFormatError(f"unsupported trace version {version!r}")
        threads: dict[int, ThreadTrace] = {}
        for tid, tobj in obj["threads"].items():
            timing = tobj.get("timing")
            threads[int(tid)] = ThreadTrace(
                grammar=FrozenGrammar.from_obj(tobj["grammar"]),
                timing=TimingTable.from_obj(timing) if timing is not None else None,
                event_count=int(tobj.get("event_count", 0)),
            )
        return cls(
            registry=EventRegistry.from_obj(obj["events"]),
            threads=threads,
            meta=obj.get("meta", {}),
        )

    def save(self, path: str | os.PathLike) -> None:
        """Write the trace file (gzipped if the path ends in ``.gz``)."""
        save_trace(self, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Trace":
        """Read a trace file written by :meth:`save`."""
        return load_trace(path)


def _open(path: str | os.PathLike, mode: str, *, gz: bool) -> IO:
    if gz:
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _fsync_dir(dirname: str) -> None:
    """Flush a directory entry to disk (no-op where unsupported)."""
    try:
        fd = os.open(dirname or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass  # some filesystems refuse fsync on directories
    finally:
        os.close(fd)


def save_trace(trace: Trace, path: str | os.PathLike) -> None:
    """Serialize ``trace`` to ``path``, atomically and durably.

    Concurrent-writer safe: each writer stages into its own temporary
    file (pid + random suffix) in the destination directory, so two
    processes saving the same path never clobber each other's staging
    file — the last ``os.replace`` wins with a complete trace either
    way.  Crash durable: the staged bytes are fsynced before the rename
    and the directory entry after it, so a crash at any point leaves
    either the old complete file or the new complete file, never a
    partial one; failures unlink the staging file instead of leaking it.
    """
    path = os.fspath(path)
    body = json.dumps(trace.to_obj(), separators=(",", ":")).encode("utf-8")
    if path.endswith(".gz"):
        body = gzip.compress(body)
    tmp = f"{path}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(os.path.dirname(path))


def load_trace(path: str | os.PathLike) -> Trace:
    """Load a trace file produced by :func:`save_trace`.

    Raises :class:`TraceFormatError` when the file exists but cannot be
    decoded (truncated gzip, invalid JSON, wrong or future format
    version); :class:`FileNotFoundError` propagates unchanged.
    """
    try:
        with _open(path, "r", gz=str(path).endswith(".gz")) as fh:
            obj = json.load(fh)
    except FileNotFoundError:
        raise
    except (EOFError, OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"cannot read trace file {os.fspath(path)!r}: {exc}") from exc
    if not isinstance(obj, dict):
        raise TraceFormatError(f"not a pythia trace file: {os.fspath(path)!r}")
    try:
        return Trace.from_obj(obj)
    except TraceFormatError as exc:
        raise TraceFormatError(f"{os.fspath(path)!r}: {exc}") from None
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed trace file {os.fspath(path)!r}: {exc}") from exc
