"""PYTHIA-PREDICT: tracking the execution and predicting its future.

The tracker maintains a weighted set of candidate progress sequences
(§II-B).  In the common deterministic case the set has a single complete
chain and :meth:`PythiaPredict.observe` is a cheap exact step; after a
mid-stream attach or an unexpected event the set holds several weighted
partial chains that narrow down as events confirm them (the paper's
example: four occurrences of ``b``, reduced to two after a ``c``).

:meth:`PythiaPredict.predict` simulates the future from a copy of the
candidates (§II-C): it advances ``distance`` steps without observation,
aggregates the weight mass per terminal, and reports the most probable
event — optionally with an estimated delay from the timing table.

By default the tracker runs on the grammar's shared
:class:`~repro.core.successor.SuccessorMachine`: successor expansions
are memoized per chain, the in-sync observe step is a single
deterministic-table lookup, and :meth:`PythiaPredict.observe_and_predict`
fuses the dominant runtime-system call pattern (submit an event, then
immediately ask about the future) so the expansion a ``predict`` leaves
in the cache is the one the next ``observe`` consumes.  Pass
``compiled=False`` for the uncached reference traversal — both paths
perform identical float operations and produce byte-identical
predictions and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.explain import EventExplanation, Explanation, SourceChain
from repro.core.frozen import FrozenGrammar
from repro.core.progress import END, Chain, start_chains, successors, terminal_of
from repro.core.timing import TimingTable
from repro.obs import metrics as obs_metrics
from repro.obs.accuracy import AccuracyTracker

__all__ = ["Prediction", "PythiaPredict"]

#: registry flushes happen every this many observations (the hot path
#: only bumps plain ints; scrapers call :meth:`PythiaPredict.flush_metrics`)
METRICS_FLUSH_EVERY = 1024

#: watcher feeds skipped after a calm OK update (flight + drift see
#: every 4th stride boundary while nothing is wrong; any anomaly resets
#: this, so a workload switch is classified within two stride windows)
_WATCH_CALM_SKIP = 3

#: bound on the per-tracker timing-estimate memo (cleared when full)
_ETA_CACHE_MAX = 16384

_MISSING = object()


@dataclass(frozen=True, slots=True)
class Prediction:
    """Outcome of one oracle query.

    ``terminal is None`` means "the reference execution ends here".
    ``eta`` is the estimated delay (same unit as recorded timestamps)
    until the predicted event, or ``None`` when no timing data exists.
    """

    terminal: int | None
    probability: float
    eta: float | None = None
    distribution: dict[int | None, float] = field(default_factory=dict)


class PythiaPredict:
    """Oracle side of PYTHIA: follows events, answers future queries.

    Parameters
    ----------
    grammar:
        Frozen grammar of the reference execution.
    timing:
        Optional duration table (enables ``eta`` in predictions).
    max_candidates:
        Cap on tracked candidate chains; lowest-weight candidates are
        pruned first (the paper tracks "all the possible sequences" —
        unbounded in theory, capped here for robustness).
    min_weight:
        Candidates below this fraction of total weight are dropped.
    compiled:
        Use the grammar's shared successor machine (the default).
        ``False`` selects the uncached reference traversal, which is
        byte-identical but recomputes every expansion.
    """

    def __init__(
        self,
        grammar: FrozenGrammar,
        timing: TimingTable | None = None,
        *,
        max_candidates: int = 64,
        min_weight: float = 1e-6,
        compiled: bool = True,
    ) -> None:
        self.grammar = grammar
        self.timing = timing
        self.max_candidates = max_candidates
        self.min_weight = min_weight
        self.machine = grammar.machine() if compiled else None
        #: weighted candidate chains; empty means "lost" (no knowledge)
        self.candidates: dict[Chain, float] = {}
        #: statistics a runtime system may want to report
        self.observed = 0
        self.unexpected = 0
        self.unknown = 0
        self.matched = 0
        self.predictions = 0
        #: candidates dropped by weight/cap pruning
        self.pruned = 0
        #: online hit/miss/lost/time-error scoring of every prediction
        self.accuracy = AccuracyTracker()
        self._since_flush = 0
        self._flushed: dict[str, int] = {}
        #: memo of ``timing.estimate`` per (interned) chain — a pure
        #: function of the immutable table, used by both traversal paths
        self._eta_cache: dict[Chain, float | None] = {}
        #: reusable Prediction per terminal for the deterministic walk
        #: (predictions are value objects: callers must not mutate them)
        self._det_pred: dict[int, Prediction] = {}
        #: optional observability hooks (see attach_flight / attach_drift).
        #: The matched fast path never touches them: both are driven from
        #: :meth:`_tick`, whose cadence ``_flush_every`` drops from
        #: METRICS_FLUSH_EVERY to the attached watchers' stride.
        self.flight = None
        self.drift = None
        self._flush_every = METRICS_FLUSH_EVERY
        self._metrics_every = 1
        self._ticks = 0
        #: remaining stride boundaries to skip feeding the watchers
        #: (calm-stretch; cleared to 0 by the anomaly cold paths)
        self._watch_skip = 0

    # ------------------------------------------------------------------
    # following the execution (§II-B)
    # ------------------------------------------------------------------

    @property
    def lost(self) -> bool:
        """True when the tracker has no candidate position (no knowledge)."""
        return not self.candidates

    def observe(self, terminal: int, *, now: float | None = None) -> bool:
        """Submit one event; returns True if it matched an expected event.

        On mismatch the tracker restarts from every occurrence of the
        event (tolerance to unexpected events, §II-B2); if the event never
        occurred in the reference execution the tracker becomes *lost*
        and the runtime must fall back to its heuristics until a known
        event shows up.  ``now`` (any monotone clock, e.g. the recorded
        timestamps' unit) feeds the online time-error scoring.
        """
        self.observed += 1
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._tick()
        machine = self.machine
        cands = self.candidates
        if cands:
            if machine is not None and len(cands) == 1:
                # in-sync fast path: one deterministic-table lookup.
                # A post-prune singleton always carries weight 1.0, so
                # {next: 1.0} is exactly what the general path computes.
                chain = next(iter(cands))
                det = machine.deterministic_next(chain)
                if det is not None and det[1] == terminal:
                    self.candidates = {det[0]: 1.0}
                    self.matched += 1
                    self.accuracy.note_observation(
                        terminal, matched=True, lost=False, now=now
                    )
                    return True
            matched: dict[Chain, float] = {}
            if machine is not None:
                for chain, weight in cands.items():
                    for succ, rw, succ_terminal in machine.expand(chain):
                        if succ_terminal == terminal:
                            w = rw if weight == 1.0 else rw * weight
                            matched[succ] = matched.get(succ, 0.0) + w
            else:
                for chain, weight in cands.items():
                    for succ, w in successors(self.grammar, chain, weight):
                        if succ is END or not succ:
                            continue
                        if terminal_of(self.grammar, succ) == terminal:
                            matched[succ] = matched.get(succ, 0.0) + w
            if matched:
                self.candidates = self._prune(matched)
                self.matched += 1
                self.accuracy.note_observation(terminal, matched=True, lost=False, now=now)
                return True
            self.unexpected += 1
        restart = (
            machine.start_chains(terminal)
            if machine is not None
            else start_chains(self.grammar, terminal)
        )
        if not restart:
            self.unknown += 1
            self.candidates = {}
            self.accuracy.note_observation(terminal, matched=False, lost=True, now=now)
            self._watch_skip = 0
            flight = self.flight
            if flight is not None:
                flight.anomaly("unknown", terminal, self)
            return False
        agg: dict[Chain, float] = {}
        for chain, w in restart:
            agg[chain] = agg.get(chain, 0.0) + w
        self.candidates = self._prune(agg)
        self.accuracy.note_observation(terminal, matched=False, lost=False, now=now)
        self._watch_skip = 0
        flight = self.flight
        if flight is not None:
            flight.anomaly("restart", terminal, self)
        return False

    def observe_unknown(self, *, now: float | None = None) -> bool:
        """Submit an event absent from the reference registry.

        The oracle has no information at all: the tracker becomes lost
        and the runtime must rely on its heuristics (§II-B2).  Shared by
        the in-process facade and the daemon so both report identical
        statistics.  Always returns False.
        """
        self.observed += 1
        self._since_flush += 1
        self.unknown += 1
        self.candidates = {}
        self.accuracy.note_observation(None, matched=False, lost=True, now=now)
        self._watch_skip = 0
        flight = self.flight
        if flight is not None:
            flight.anomaly("unknown", None, self)
        if self._since_flush >= self._flush_every:
            self._tick()
        return False

    def _prune_impl(self, cands: dict[Chain, float]) -> tuple[dict[Chain, float], int]:
        """One-pass normalize / filter / cap; returns (kept, dropped)."""
        total = sum(cands.values())
        if total <= 0.0:
            return {}, 0
        min_weight = self.min_weight
        items: list[tuple[Chain, float]] = []
        for c, w in cands.items():
            q = w / total
            if q >= min_weight:
                items.append((c, q))
        items.sort(key=lambda cw: cw[1], reverse=True)
        if len(items) > self.max_candidates:
            del items[self.max_candidates :]
        dropped = len(cands) - len(items)
        norm = sum(w for _c, w in items)
        return {c: w / norm for c, w in items}, dropped

    def _prune(self, cands: dict[Chain, float]) -> dict[Chain, float]:
        out, dropped = self._prune_impl(cands)
        self.pruned += dropped
        return out

    def _prune_keep_end(self, cands: dict[Chain, float]) -> dict[Chain, float]:
        """Prune like :meth:`_prune` but on a simulation copy: END is a
        normal candidate and drops do not count as tracker pruning."""
        out, _dropped = self._prune_impl(cands)
        return out

    # ------------------------------------------------------------------
    # predicting the future (§II-C)
    # ------------------------------------------------------------------

    def predict(self, distance: int = 1, *, with_time: bool = False) -> Prediction | None:
        """Predict the event that will occur ``distance`` events from now.

        Returns ``None`` when the tracker is lost.  The prediction carries
        the full terminal distribution and, if ``with_time`` and a timing
        table is available, the estimated delay until that event.  Only
        the final step's distribution is materialized — use
        :meth:`predict_sequence` for every intermediate step.
        """
        machine = self.machine
        cands = self.candidates
        if (
            machine is not None
            and len(cands) == 1
            and distance >= 1
            and not (with_time and self.timing is not None)
        ):
            # deterministic walk: an in-sync tracker predicting ahead is
            # `distance` dict lookups.  Each step equals one general
            # simulation step on a weight-1.0 singleton (see _simulate's
            # fast path); any branch, END or cold entry falls back.
            chain, weight = next(iter(cands.items()))
            if weight == 1.0 and chain is not END and chain:
                det_get = machine._det.get
                term = None
                nx = None
                for _ in range(distance):
                    nx = det_get(chain)
                    if nx is None:
                        break
                    chain, term = nx
                if nx is not None:
                    machine.det_hits += distance
                    self.predictions += 1
                    pred = self._det_pred.get(term)
                    if pred is None:
                        pred = Prediction(
                            terminal=term, probability=1.0, eta=None,
                            distribution={term: 1.0},
                        )
                        self._det_pred[term] = pred
                    self.accuracy.note_prediction(term, distance=distance, eta=None)
                    flight = self.flight
                    if flight is not None:
                        flight.last_distance = distance
                        flight.last_pred = pred
                    return pred
        preds = self._simulate(distance, with_time=with_time, collect_all=False)
        if preds is None:
            return None
        pred = preds[-1]
        self.accuracy.note_prediction(pred.terminal, distance=distance, eta=pred.eta)
        flight = self.flight
        if flight is not None:
            flight.last_distance = distance
            flight.last_pred = pred
        return pred

    def predict_sequence(
        self, distance: int = 1, *, with_time: bool = False
    ) -> list[Prediction] | None:
        """Predict every event from 1 to ``distance`` steps ahead."""
        return self._simulate(distance, with_time=with_time, collect_all=True)

    def explain(
        self,
        distance: int = 1,
        *,
        top_k: int = 3,
        max_sources: int = 8,
        with_time: bool = False,
    ) -> Explanation | None:
        """Provenance of :meth:`predict` for the current tracker state.

        Re-runs the §II-C simulation (same floats as ``predict``, via
        :meth:`_simulate`) but keeps the final candidate set and renders,
        per top-k terminal, the progress sequences backing its
        probability mass — see :mod:`repro.core.explain`.  Read-only:
        no counter moves, no prediction is registered for scoring, so
        an ``explain`` between two ``predict`` calls cannot change any
        statistic.  ``events[0]`` carries exactly the terminal and
        probability ``predict(distance)`` would return; returns ``None``
        when the tracker is lost (as ``predict`` does).
        """
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        candidates_before = len(self.candidates)
        capture: dict = {}
        preds = self._simulate(
            distance,
            with_time=with_time,
            collect_all=False,
            count=False,
            capture=capture,
        )
        if preds is None:
            return None
        pred = preds[-1]
        grammar = self.grammar
        by_term: dict[int | None, list[SourceChain]] = {}
        for chain, weight in capture["cands"].items():
            t = None if (chain is END or not chain) else terminal_of(grammar, chain)
            by_term.setdefault(t, []).append(
                SourceChain(chain=tuple(chain), terminal=t, weight=weight)
            )
        # stable descending sort: among equal masses the first-inserted
        # terminal wins, matching predict()'s max() tie-break exactly
        ordered = sorted(
            pred.distribution.items(), key=lambda kv: kv[1], reverse=True
        )
        events = []
        for t, mass in ordered[:top_k]:
            sources = sorted(by_term.get(t, ()), key=lambda s: s.weight, reverse=True)
            events.append(
                EventExplanation(
                    terminal=t,
                    probability=mass,
                    sources=tuple(sources[:max_sources]),
                    source_count=len(sources),
                )
            )
        return Explanation(
            distance=distance,
            path="compiled" if self.machine is not None else "reference",
            deterministic=capture["deterministic"],
            candidates=candidates_before,
            eta=pred.eta,
            events=tuple(events),
        )

    def _simulate(
        self,
        distance: int,
        *,
        with_time: bool,
        collect_all: bool,
        count: bool = True,
        capture: dict | None = None,
    ) -> list[Prediction] | None:
        """Advance a candidate copy ``distance`` steps without observing.

        With ``collect_all`` a :class:`Prediction` (with its full
        distribution) is built per step; otherwise only for the final
        step — the candidate evolution is identical either way.
        ``count=False`` leaves the ``predictions`` counter untouched
        (:meth:`explain` re-runs the simulation without becoming a new
        oracle query); ``capture`` receives the final candidate set and
        whether every step stayed deterministic.
        """
        if distance < 1:
            raise ValueError("distance must be >= 1")
        if not self.candidates:
            return None
        if count:
            self.predictions += 1
        machine = self.machine
        # never mutated in place: every step rebinds to a fresh dict
        cands = self.candidates
        out: list[Prediction] = []
        elapsed = 0.0
        all_det = True
        have_time = with_time and self.timing is not None
        last_step = distance - 1
        for step in range(distance):
            if machine is not None and len(cands) == 1:
                # deterministic fast path: a singleton candidate always
                # carries weight exactly 1.0, so when its transition is
                # deterministic the whole step — advance, prune, weighted
                # eta, distribution — collapses to {next: 1.0} with the
                # same floats the general path below would produce.
                chain, weight = next(iter(cands.items()))
                if weight == 1.0 and chain is not END and chain:
                    det = machine.deterministic_next(chain)
                    if det is not None:
                        succ, term = det
                        cands = {succ: 1.0}
                        if have_time:
                            dt = self._estimate(succ)
                            if dt is not None:
                                elapsed += dt
                        if collect_all or step == last_step:
                            out.append(
                                Prediction(
                                    terminal=term,
                                    probability=1.0,
                                    eta=elapsed if have_time else None,
                                    distribution={term: 1.0},
                                )
                            )
                        continue
            all_det = False
            nxt: dict[Chain, float] = {}
            step_dt = 0.0
            dt_weight = 0.0
            for chain, weight in cands.items():
                if chain is END or not chain:
                    nxt[END] = nxt.get(END, 0.0) + weight
                    continue
                succ_list = (
                    machine.successors(chain, weight)
                    if machine is not None
                    else successors(self.grammar, chain, weight)
                )
                for succ, w in succ_list:
                    nxt[succ] = nxt.get(succ, 0.0) + w
                    if have_time and succ is not END and succ:
                        dt = self._estimate(succ)
                        if dt is not None:
                            step_dt += w * dt
                            dt_weight += w
            cands = self._prune_keep_end(nxt)
            if not cands:
                return None
            if have_time and dt_weight > 0.0:
                elapsed += step_dt / dt_weight
            if collect_all or step == last_step:
                dist: dict[int | None, float] = {}
                for chain, weight in cands.items():
                    t = None if (chain is END or not chain) else terminal_of(self.grammar, chain)
                    dist[t] = dist.get(t, 0.0) + weight
                best_t, best_w = max(dist.items(), key=lambda kv: kv[1])
                out.append(
                    Prediction(
                        terminal=best_t,
                        probability=best_w,
                        eta=elapsed if have_time else None,
                        distribution=dist,
                    )
                )
        if capture is not None:
            capture["cands"] = cands
            capture["deterministic"] = all_det
        return out

    def _estimate(self, chain: Chain) -> float | None:
        """Memoized ``timing.estimate`` (the table is immutable)."""
        cache = self._eta_cache
        got = cache.get(chain, _MISSING)
        if got is not _MISSING:
            return got
        value = self.timing.estimate(chain)
        if len(cache) >= _ETA_CACHE_MAX:
            cache.clear()
        cache[chain] = value
        return value

    def predict_duration(self, distance: int = 1) -> float | None:
        """Estimated time until the event ``distance`` steps ahead."""
        pred = self.predict(distance, with_time=True)
        if pred is None:
            return None
        return pred.eta

    # ------------------------------------------------------------------
    # the fused fast path
    # ------------------------------------------------------------------

    def observe_and_predict(
        self,
        terminal: int,
        distance: int = 1,
        *,
        with_time: bool = False,
        now: float | None = None,
        require_match: bool = False,
    ) -> tuple[bool, Prediction | None]:
        """Fused §II-B observe + §II-C predict: the runtime-system loop.

        Semantically identical to :meth:`observe` followed by
        :meth:`predict` (counters and accuracy scoring included), but on
        the compiled machine the expansion this ``predict`` leaves in
        the cache is exactly the one the *next* ``observe`` needs, so a
        steady-state observe/predict loop computes each expansion once
        instead of twice.  With ``require_match`` the predict half is
        skipped after a mismatch (the runtime systems do not trust a
        prediction made right after a resync, §III-E) and ``None`` is
        returned in its place.
        """
        matched = self.observe(terminal, now=now)
        if require_match and not matched:
            return matched, None
        return matched, self.predict(distance, with_time=with_time)

    # ------------------------------------------------------------------
    # observability hooks (flight recorder / drift monitor)
    # ------------------------------------------------------------------

    def attach_flight(self, flight) -> None:
        """Attach a :class:`~repro.obs.flight.FlightRecorder` (None detaches).

        The recorder journals anomalies (restarts, unknown events) as
        they happen and run summaries at every tick; see :meth:`_tick`
        for the cost model.
        """
        self.flight = flight
        self._retune()

    def attach_drift(self, monitor) -> None:
        """Attach a :class:`~repro.obs.drift.DriftMonitor` (None detaches).

        The monitor consumes counter deltas at every tick; its
        ``stride`` becomes the tick cadence, so the matched fast path
        pays nothing per event beyond the existing ``_since_flush`` bump.
        """
        self.drift = monitor
        self._retune()

    def _retune(self) -> None:
        strides = [w.stride for w in (self.drift, self.flight) if w is not None]
        if strides:
            self._flush_every = max(1, min(strides))
            self._metrics_every = max(1, METRICS_FLUSH_EVERY // self._flush_every)
        else:
            self._flush_every = METRICS_FLUSH_EVERY
            self._metrics_every = 1
        self._ticks = 0
        self._watch_skip = 0

    def _tick(self) -> None:
        """Strided hook off the observe hot path.

        Observations only bump ``_since_flush``; every ``_flush_every``
        of them this journals a flight run entry, feeds the drift
        monitor and flushes metrics every METRICS_FLUSH_EVERY
        observations — the same cadence as before watchers existed.

        While the monitor reports OK and the window had no anomalies the
        watcher feed stretches to every ``_WATCH_CALM_SKIP + 1``-th
        boundary — the flight journal is run-length compressed anyway,
        so a calm run entry simply covers a longer block.  The anomaly
        cold paths zero ``_watch_skip``, so after a workload switch the
        monitor sees a mostly-anomalous window within at most two stride
        lengths — stride 32 keeps the classify-a-switch latency at or
        under 63 events — and the journal snaps back to per-stride
        granularity for the storm.  Without a drift monitor nothing is
        ever skipped: a lone flight recorder journals every boundary.
        """
        self._since_flush = 0
        if self._watch_skip > 0:
            self._watch_skip -= 1
        else:
            flight = self.flight
            if flight is not None:
                flight.tick(self)
            drift = self.drift
            if drift is not None and drift.update(self) == "ok":
                self._watch_skip = _WATCH_CALM_SKIP
        self._ticks += 1
        if self._ticks >= self._metrics_every:
            self._ticks = 0
            self.flush_metrics()

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Tracking counters plus the online accuracy report.

        The four original keys (``observed`` / ``unexpected`` /
        ``unknown`` / ``candidates``) are preserved; the rest comes from
        the embedded :class:`~repro.obs.accuracy.AccuracyTracker`.  The
        oracle daemon's per-session ``stats`` op returns exactly this
        dict, so in-process and remote reporting share one shape.
        (Successor-cache counters are deliberately absent: compiled and
        reference trackers must report identical statistics.)
        """
        self.flush_metrics()
        out = {
            "observed": self.observed,
            "unexpected": self.unexpected,
            "unknown": self.unknown,
            "candidates": len(self.candidates),
            "matched": self.matched,
            "predictions": self.predictions,
            "pruned": self.pruned,
        }
        out.update(self.accuracy.report())
        return out

    def flush_metrics(self) -> None:
        """Publish counter deltas to the process metrics registry.

        Called automatically every :data:`METRICS_FLUSH_EVERY`
        observations and from :meth:`stats`; the daemon also calls it at
        scrape time so `pythia-trace metrics` sees live values.
        """
        self._since_flush = 0
        reg = obs_metrics.get_registry()
        if not reg.enabled:
            return
        acc = self.accuracy
        current = {
            "pythia_predict_observe_total": self.observed,
            "pythia_predict_matched_total": self.matched,
            "pythia_predict_unexpected_total": self.unexpected,
            "pythia_predict_unknown_total": self.unknown,
            "pythia_predict_predictions_total": self.predictions,
            "pythia_predict_pruned_total": self.pruned,
            "pythia_predict_hits_total": acc.hits,
            "pythia_predict_misses_total": acc.misses,
            "pythia_predict_lost_total": acc.lost_events,
            "pythia_predict_resyncs_total": acc.resyncs,
        }
        flushed = self._flushed
        for name, value in current.items():
            delta = value - flushed.get(name, 0)
            if delta:
                reg.counter(name).inc(delta)
                flushed[name] = value
        reg.histogram(
            "pythia_predict_candidates",
            help="Candidate-chain set size at flush points",
        ).observe(len(self.candidates))
        if self.machine is not None:
            self.machine.flush_metrics()
