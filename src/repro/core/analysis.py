"""Grammar and trace analytics.

Post-hoc inspection utilities used by the CLI, the experiments and the
test suite: compression metrics (Table I's "# rules" is one of them),
structural statistics (depth, fan-out, loop structure) and a
per-terminal histogram.  These are diagnostics — nothing here is on the
recording hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.frozen import ROOT, FrozenGrammar, decode_rule, is_rule_sym

__all__ = ["GrammarStats", "analyze", "loop_structure"]


@dataclass(frozen=True, slots=True)
class GrammarStats:
    """Summary statistics of one frozen grammar."""

    trace_len: int
    rule_count: int
    symbol_uses: int          # total body elements across all rules
    distinct_terminals: int
    max_exponent: int
    depth: int                # longest rule-nesting chain
    compression_ratio: float  # trace_len / symbol_uses

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.trace_len:,} events -> {self.rule_count} rules / "
            f"{self.symbol_uses} symbol uses "
            f"(x{self.compression_ratio:,.1f} compression, depth {self.depth}, "
            f"max repeat {self.max_exponent})"
        )


def analyze(fg: FrozenGrammar) -> GrammarStats:
    """Compute :class:`GrammarStats` for a frozen grammar."""
    symbol_uses = sum(len(body) for body in fg.bodies.values())
    max_exp = max(
        (exp for body in fg.bodies.values() for _sym, exp in body), default=0
    )
    return GrammarStats(
        trace_len=fg.trace_len,
        rule_count=fg.rule_count,
        symbol_uses=symbol_uses,
        distinct_terminals=len(fg.terminal_positions),
        max_exponent=max_exp,
        depth=_depth(fg),
        compression_ratio=(fg.trace_len / symbol_uses) if symbol_uses else 1.0,
    )


def _depth(fg: FrozenGrammar) -> int:
    """Longest nesting chain from the root down to a terminal."""
    memo: dict[int, int] = {}

    def rule_depth(rid: int) -> int:
        if rid in memo:
            return memo[rid]
        memo[rid] = 0  # break (impossible) cycles defensively
        best = 1
        for sym, _exp in fg.bodies[rid]:
            if is_rule_sym(sym):
                best = max(best, 1 + rule_depth(decode_rule(sym)))
        memo[rid] = best
        return best

    return rule_depth(ROOT) if fg.bodies[ROOT] else 0


def loop_structure(fg: FrozenGrammar, min_reps: int = 2) -> list[tuple[int, int, int]]:
    """The grammar's loops: ``(rule id, body index, repetitions)`` for
    every use with an exponent of at least ``min_reps``, sorted by
    decreasing repetition count.

    This is the view a runtime system would use to find an
    application's main loop (BT's ``A^200`` tops the list).
    """
    loops = [
        (rid, idx, exp)
        for rid, body in fg.bodies.items()
        for idx, (_sym, exp) in enumerate(body)
        if exp >= min_reps
    ]
    loops.sort(key=lambda t: -t[2])
    return loops


def terminal_histogram(fg: FrozenGrammar) -> dict[int, int]:
    """Occurrences of every terminal in the full trace (without unfolding)."""
    return {
        t: sum(fg.position_occurrences(rid, idx) for rid, idx in positions)
        for t, positions in fg.terminal_positions.items()
    }
