"""Immutable grammar snapshot used by PYTHIA-PREDICT.

After PYTHIA-RECORD finishes, the mutable linked-list grammar is *frozen*
into flat tuples: rule bodies become ``((symbol, exponent), ...)`` arrays,
symbols are encoded as plain ints (terminals ``>= 0``, rule references
``< 0``), and the structures prediction needs — occurrence counts, the
use-sites of every rule, the positions of every terminal — are
precomputed.  This is what gets written to the trace file and reloaded on
subsequent executions (§II-B: "it is the grammar that is loaded in memory
and used, without the trace being reconstructed").

Two serializations exist: the portable JSON form (:meth:`FrozenGrammar.
to_obj` / :meth:`from_obj`, re-deriving the indexes on load) and the
compiled binary artifact (:mod:`repro.core.mmap_grammar`), which stores
every derived table verbatim so worker processes can ``mmap`` one shared
read-only copy and adopt the tables via :meth:`FrozenGrammar.from_tables`
without parsing or re-deriving anything.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.core.grammar import Grammar, GrammarError
from repro.core.symbols import Rule

ROOT = 0
"""Rule id of the root (the first rule a :class:`Grammar` allocates)."""


def encode_rule(rid: int) -> int:
    """Encode rule id ``rid`` as a negative symbol."""
    return -(rid + 1)


def decode_rule(sym: int) -> int:
    """Inverse of :func:`encode_rule` (requires ``sym < 0``)."""
    return -sym - 1


def is_rule_sym(sym: int) -> bool:
    """True if the encoded symbol references a rule."""
    return sym < 0


class FrozenGrammar:
    """Read-only grammar with precomputed prediction indexes.

    Attributes
    ----------
    bodies:
        ``{rule id: ((symbol, exponent), ...)}``; symbol ``>= 0`` is a
        terminal event id, ``< 0`` encodes a rule reference
        (see :func:`encode_rule`).
    occ:
        ``{rule id: times the rule is expanded in the full trace}`` — the
        recursive occurrence count §II-C uses as probability estimate.
    uses:
        ``{rule id: ((host rule id, body index), ...)}`` — every use site.
    terminal_positions:
        ``{terminal: ((rule id, body index), ...)}`` — every occurrence.
    """

    __slots__ = ("bodies", "occ", "uses", "terminal_positions", "trace_len", "_machine")

    def __init__(self, bodies: Mapping[int, tuple[tuple[int, int], ...]]) -> None:
        if ROOT not in bodies:
            raise GrammarError("frozen grammar must contain the root rule (id 0)")
        self.bodies: dict[int, tuple[tuple[int, int], ...]] = {
            int(rid): tuple((int(s), int(e)) for s, e in body)
            for rid, body in bodies.items()
        }
        self._validate()
        self.uses = self._build_uses()
        self.occ = self._build_occ()
        self.terminal_positions = self._build_terminal_positions()
        self.trace_len = sum(
            self.occ[rid] * e
            for rid, body in self.bodies.items()
            for s, e in body
            if not is_rule_sym(s)
        )
        self._machine = None

    # ------------------------------------------------------------------

    @classmethod
    def from_grammar(cls, grammar: Grammar) -> "FrozenGrammar":
        """Freeze a mutable :class:`~repro.core.grammar.Grammar`."""
        bodies: dict[int, tuple[tuple[int, int], ...]] = {}
        for rule in grammar.rules.values():
            body = tuple(
                (
                    encode_rule(n.symbol.rid) if isinstance(n.symbol, Rule) else n.symbol,
                    n.exp,
                )
                for n in rule
            )
            bodies[rule.rid] = body
        return cls(bodies)

    def _validate(self) -> None:
        for rid, body in self.bodies.items():
            for sym, exp in body:
                if exp < 1:
                    raise GrammarError(f"rule {rid} has non-positive exponent {exp}")
                if is_rule_sym(sym) and decode_rule(sym) not in self.bodies:
                    raise GrammarError(
                        f"rule {rid} references missing rule {decode_rule(sym)}"
                    )

    def _build_uses(self) -> dict[int, tuple[tuple[int, int], ...]]:
        uses: dict[int, list[tuple[int, int]]] = {rid: [] for rid in self.bodies}
        for rid, body in self.bodies.items():
            for idx, (sym, _exp) in enumerate(body):
                if is_rule_sym(sym):
                    uses[decode_rule(sym)].append((rid, idx))
        return {rid: tuple(v) for rid, v in uses.items()}

    def _build_occ(self) -> dict[int, int]:
        # Worklist topological pass (no recursion: deep grammars used to
        # hit Python's recursion limit here).  A rule's count is known
        # once every one of its use sites lives in a resolved host; the
        # root is 1 by definition, unused rules are 0, and rules left
        # unresolved when the worklist drains sit on a cycle.
        occ: dict[int, int] = {ROOT: 1}
        remaining = {rid: len(self.uses[rid]) for rid in self.bodies if rid != ROOT}
        ready = [ROOT]
        for rid, uses_left in remaining.items():
            if uses_left == 0:
                occ[rid] = 0
                ready.append(rid)
        while ready:
            host = ready.pop()
            for sym, _exp in self.bodies[host]:
                if not is_rule_sym(sym):
                    continue
                rid = decode_rule(sym)
                if rid == ROOT:
                    continue
                remaining[rid] -= 1
                if remaining[rid] == 0:
                    total = 0
                    for h, idx in self.uses[rid]:
                        total += occ[h] * self.bodies[h][idx][1]
                    occ[rid] = total
                    ready.append(rid)
        if len(occ) != len(self.bodies):
            stuck = min(rid for rid in self.bodies if rid not in occ)
            raise GrammarError(f"rule cycle detected at rule {stuck}")
        return occ

    def _build_terminal_positions(self) -> dict[int, tuple[tuple[int, int], ...]]:
        pos: dict[int, list[tuple[int, int]]] = {}
        for rid, body in self.bodies.items():
            for idx, (sym, _exp) in enumerate(body):
                if not is_rule_sym(sym):
                    pos.setdefault(sym, []).append((rid, idx))
        return {t: tuple(v) for t, v in pos.items()}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def rule_count(self) -> int:
        """Number of rules, root included (Table I's "# rules")."""
        return len(self.bodies)

    def machine(self):
        """The shared compiled successor machine for this grammar.

        Created lazily; every tracker over this grammar (and, in the
        daemon, every session over the same trace bundle) shares one
        machine so they warm one cache.  A creation race can build two
        machines, of which the last assigned wins — both are correct,
        one just wastes a little warm-up.
        """
        m = self._machine
        if m is None:
            from repro.core.successor import SuccessorMachine

            m = SuccessorMachine(self)
            self._machine = m
        return m

    def symbol_at(self, rid: int, idx: int) -> tuple[int, int]:
        """Return ``(symbol, exponent)`` at position ``idx`` of rule ``rid``."""
        return self.bodies[rid][idx]

    def body_len(self, rid: int) -> int:
        """Number of body elements of rule ``rid``."""
        return len(self.bodies[rid])

    def position_occurrences(self, rid: int, idx: int) -> int:
        """How many times the use at ``(rid, idx)`` expands in the trace."""
        return self.occ[rid] * self.bodies[rid][idx][1]

    def terminals(self) -> Iterator[int]:
        """Iterate over the distinct terminals appearing in the grammar."""
        return iter(self.terminal_positions)

    def unfold(self) -> list[int]:
        """Expand back into the full terminal sequence (tests / timing replay)."""
        out: list[int] = []
        root_body = self.bodies[ROOT]
        if not root_body:
            return out
        # Each frame (rid, idx, reps) means: expand position (rid, idx)
        # `reps` more times, then continue at (rid, idx + 1).
        stack: list[tuple[int, int, int]] = [(ROOT, 0, root_body[0][1])]
        while stack:
            rid, idx, reps = stack.pop()
            body = self.bodies[rid]
            if reps == 0:
                if idx + 1 < len(body):
                    stack.append((rid, idx + 1, body[idx + 1][1]))
                continue
            sym, _exp = body[idx]
            if not is_rule_sym(sym):
                out.extend([sym] * reps)
                if idx + 1 < len(body):
                    stack.append((rid, idx + 1, body[idx + 1][1]))
            else:
                stack.append((rid, idx, reps - 1))
                child = decode_rule(sym)
                child_body = self.bodies[child]
                if child_body:
                    stack.append((child, 0, child_body[0][1]))
        return out

    def dump(self, names=None) -> str:
        """Render in the paper's notation (mirrors :meth:`Grammar.dump`)."""
        names = names or str
        lines = []
        for rid in sorted(self.bodies):
            parts = []
            for sym, exp in self.bodies[rid]:
                text = f"R{decode_rule(sym)}" if is_rule_sym(sym) else names(sym)
                if is_rule_sym(sym) and decode_rule(sym) == ROOT:
                    text = "R"
                if exp != 1:
                    text += f"^{exp}"
                parts.append(text)
            rule_name = "R" if rid == ROOT else f"R{rid}"
            lines.append(f"{rule_name} -> {' '.join(parts) or '<empty>'}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_obj(self) -> dict:
        """JSON-compatible representation."""
        return {
            "bodies": {str(rid): [[s, e] for s, e in body] for rid, body in self.bodies.items()}
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "FrozenGrammar":
        """Inverse of :meth:`to_obj`."""
        return cls({int(rid): tuple((s, e) for s, e in body) for rid, body in obj["bodies"].items()})

    @classmethod
    def from_tables(cls, *, bodies, occ, uses, terminal_positions, trace_len):
        """Adopt precomputed tables without validating or re-deriving.

        The compiled-artifact loader (:mod:`repro.core.mmap_grammar`)
        persists every derived index at compile time; this constructor
        trusts them verbatim, so loading skips ``_validate`` and the
        ``uses``/``occ``/``terminal_positions`` builds entirely.  The
        tables only need the read-side :class:`~typing.Mapping`
        interface — lazily-decoding views are fine.
        """
        self = object.__new__(cls)
        self.bodies = bodies
        self.occ = occ
        self.uses = uses
        self.terminal_positions = terminal_positions
        self.trace_len = trace_len
        self._machine = None
        return self
