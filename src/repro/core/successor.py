"""The compiled successor machine: memoized traversal of a frozen grammar.

A :class:`~repro.core.frozen.FrozenGrammar` never changes after
freezing, so everything :func:`~repro.core.progress.successors` computes
for a chain is a pure function of the chain — like the per-rule
summaries that let "Data Race Detection on Compressed Traces" analyse
the SLP-compressed trace directly, the grammar can be *compiled* into
lookup structures once and the steady-state step becomes a dictionary
hit.  One machine is shared per grammar (``FrozenGrammar.machine()``),
so every tracker — and, in the oracle daemon, every concurrent session
over the same trace — warms the same cache.

What is cached
--------------
- **expand memo** — chain -> ``((successor, rel_weight, terminal), ...)``,
  the weight-1.0 successor set of :func:`successors_rel` with each
  successor's terminal precomputed.  Keys and successor chains are
  *interned* so repeated queries share tuple storage.
- **deterministic-transition table** — the common single-successor case
  (an in-sync tracker walking a loop body) as a direct
  chain -> ``(next chain, terminal)`` dict, so the fused observe loop is
  one dictionary lookup instead of a recursive ``_advance`` walk.
- **descend prefixes** — ``(rule, idx)`` -> first-terminal chain, used
  while computing cache misses.
- **start chains** — per-terminal §II-B2 restart sets (mid-stream attach
  and unexpected-event resync), weighted and normalized once.

Memory is bounded: the memo is capped at ``max_entries`` (default
:data:`DEFAULT_MAX_ENTRIES`, overridable via the
``PYTHIA_SUCCESSOR_CACHE`` environment variable) and evicts its oldest
eighth in insertion order when full — a segmented-FIFO approximation of
LRU that keeps eviction O(1) amortized.  Hit/miss/eviction counters are
published to the process metrics registry (``pythia_successor_*``).

Thread safety: lookups are lock-free dictionary reads (safe under the
GIL); the miss path re-checks and inserts under a per-machine lock.
The hit/miss counters themselves are updated without the lock, so under
heavy cross-thread contention they are approximate — they instrument,
they do not account.
"""

from __future__ import annotations

import os
import threading
from itertools import islice

from repro.core.frozen import FrozenGrammar
from repro.core.progress import (
    END,
    Chain,
    descend,
    start_chains,
    successors_rel,
    terminal_of,
)
from repro.obs import metrics as obs_metrics

__all__ = ["DEFAULT_MAX_ENTRIES", "SuccessorMachine"]

#: default memo capacity (chains); ~a few hundred bytes per entry
DEFAULT_MAX_ENTRIES = 65536

#: Expansion = ((successor chain, relative weight, terminal | None), ...)
Expansion = tuple[tuple[Chain, float, int | None], ...]


def _env_max_entries() -> int:
    raw = os.environ.get("PYTHIA_SUCCESSOR_CACHE", "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_MAX_ENTRIES
    return value if value >= 1 else DEFAULT_MAX_ENTRIES


class SuccessorMachine:
    """Compiled, bounded-memory successor tables over one frozen grammar.

    Parameters
    ----------
    grammar:
        The immutable grammar to compile against.
    max_entries:
        Memo capacity; ``None`` reads ``PYTHIA_SUCCESSOR_CACHE`` and
        falls back to :data:`DEFAULT_MAX_ENTRIES`.
    """

    __slots__ = (
        "grammar",
        "max_entries",
        "_memo",
        "_det",
        "_intern",
        "_descend",
        "_starts",
        "_lock",
        "hits",
        "misses",
        "evictions",
        "det_hits",
        "_flushed",
    )

    def __init__(self, grammar: FrozenGrammar, *, max_entries: int | None = None) -> None:
        self.grammar = grammar
        self.max_entries = _env_max_entries() if max_entries is None else int(max_entries)
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._memo: dict[Chain, Expansion] = {}
        self._det: dict[Chain, tuple[Chain, int]] = {}
        self._intern: dict[Chain, Chain] = {END: END}
        self._descend: dict[tuple[int, int], Chain] = {}
        self._starts: dict[int, tuple[tuple[Chain, float], ...]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.det_hits = 0
        self._flushed: dict[str, int] = {}

    # ------------------------------------------------------------------
    # the compiled lookups
    # ------------------------------------------------------------------

    def expand(self, chain: Chain) -> Expansion:
        """Successors of ``chain`` at weight 1.0, terminals included."""
        rel = self._memo.get(chain)
        if rel is not None:
            self.hits += 1
            return rel
        fg = self.grammar
        computed = successors_rel(fg, chain, descend_fn=self._descend_base)
        with self._lock:
            self.misses += 1
            rel = self._memo.get(chain)
            if rel is not None:
                return rel
            if len(self._memo) >= self.max_entries:
                self._evict_locked()
            intern = self._intern
            key = intern.setdefault(chain, chain)
            triples = []
            for c, w in computed:
                s = intern.setdefault(c, c)
                triples.append((s, w, None if s is END or not s else terminal_of(fg, s)))
            rel = tuple(triples)
            self._memo[key] = rel
            if len(rel) == 1 and rel[0][1] == 1.0 and rel[0][2] is not None:
                self._det[key] = (rel[0][0], rel[0][2])
        return rel

    def successors(self, chain: Chain, weight: float = 1.0) -> list[tuple[Chain, float]]:
        """Drop-in for :func:`repro.core.progress.successors` (memoized)."""
        rel = self.expand(chain)
        if weight == 1.0:
            return [(c, w) for c, w, _t in rel]
        return [(c, w * weight) for c, w, _t in rel]

    def deterministic_next(self, chain: Chain) -> tuple[Chain, int] | None:
        """``(next chain, its terminal)`` when the step is deterministic.

        One dict lookup; ``None`` when the chain has not been expanded
        yet or genuinely branches — callers fall back to :meth:`expand`.
        """
        nxt = self._det.get(chain)
        if nxt is not None:
            self.det_hits += 1
        return nxt

    def start_chains(self, terminal: int) -> tuple[tuple[Chain, float], ...]:
        """Cached §II-B2 restart set for one observed terminal."""
        got = self._starts.get(terminal)
        if got is None:
            got = tuple(
                (self._intern.setdefault(c, c), w)
                for c, w in start_chains(self.grammar, terminal)
            )
            self._starts[terminal] = got  # keyed by terminal: naturally bounded
        return got

    def descend(self, rid: int, idx: int, it: int | None = 0) -> Chain:
        """Cached :func:`repro.core.progress.descend` (prefix shared)."""
        base = self._descend_base(rid, idx)
        if it == 0:
            return base
        return base[:-1] + ((rid, idx, it),)

    def _descend_base(self, rid: int, idx: int) -> Chain:
        base = self._descend.get((rid, idx))
        if base is None:
            # setdefault: racing threads agree on one interned tuple
            base = self._descend.setdefault((rid, idx), descend(self.grammar, rid, idx))
        return base

    def _evict_locked(self) -> None:
        """Drop the oldest eighth of the memo (insertion order). Lock held."""
        drop = max(1, self.max_entries // 8)
        for key in list(islice(iter(self._memo), drop)):
            del self._memo[key]
            self._det.pop(key, None)
        self.evictions += drop
        # the intern table outlives memo entries (successor chains point
        # into it); reset it when it grows well past the memo bound
        if len(self._intern) > 4 * self.max_entries:
            self._intern.clear()
            self._intern[END] = END

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Cache counters (for benchmarks and the metrics registry)."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self._memo),
            "max_entries": self.max_entries,
            "interned": len(self._intern),
            "det_entries": len(self._det),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "det_hits": self.det_hits,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def flush_metrics(self) -> None:
        """Publish counter deltas and size gauges to the process registry.

        Uses the same delta-flush pattern as
        :meth:`~repro.core.predict.PythiaPredict.flush_metrics`; safe to
        call from every tracker sharing this machine.
        """
        reg = obs_metrics.get_registry()
        if not reg.enabled:
            return
        with self._lock:
            current = {
                "pythia_successor_cache_hits_total": self.hits,
                "pythia_successor_cache_misses_total": self.misses,
                "pythia_successor_cache_evictions_total": self.evictions,
                "pythia_successor_det_hits_total": self.det_hits,
            }
            deltas = {}
            for name, value in current.items():
                delta = value - self._flushed.get(name, 0)
                if delta > 0:
                    deltas[name] = delta
                    self._flushed[name] = value
            entries = len(self._memo)
            interned = len(self._intern)
        for name, delta in deltas.items():
            reg.counter(name).inc(delta)
        reg.gauge(
            "pythia_successor_cache_entries", help="Memoized successor expansions"
        ).set(entries)
        reg.gauge(
            "pythia_successor_interned_chains", help="Interned progress-sequence chains"
        ).set(interned)
