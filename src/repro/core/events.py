"""Event model for the PYTHIA oracle.

The paper (§II-A) defines an *event* as "an integer that identifies the key
point and optionally additional informations such as a timestamp, or the
destination of an MPI message".  Runtime systems intern the (key point,
payload) pair once and then submit plain integers on the hot path, which is
what keeps PYTHIA-RECORD cheap.

:class:`EventRegistry` provides that interning service.  Two events with the
same name and payload map to the same terminal id; the registry is saved
inside the trace file so that a later execution resolves the same
(name, payload) pairs to the same terminals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping


@dataclass(frozen=True, slots=True)
class Event:
    """A key point reached by the application.

    Parameters
    ----------
    name:
        Identifier of the key point, e.g. ``"MPI_Send"`` or
        ``"omp_region_begin"``.
    payload:
        Optional extra information that distinguishes otherwise identical
        key points: the destination rank of a point-to-point message, the
        root of a collective, the reduction operation, the function pointer
        of an OpenMP parallel region...  Must be hashable.
    """

    name: str
    payload: Hashable = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.payload is None:
            return self.name
        return f"{self.name}({self.payload})"


class EventRegistry:
    """Bidirectional mapping between :class:`Event` values and terminal ids.

    Terminal ids are dense non-negative integers allocated in first-seen
    order, so a grammar recorded with one registry can be replayed with a
    registry restored from the same trace file.
    """

    __slots__ = ("_by_event", "_by_id")

    def __init__(self) -> None:
        self._by_event: dict[Event, int] = {}
        self._by_id: list[Event] = []

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._by_id)

    def __contains__(self, event: Event) -> bool:
        return event in self._by_event

    def intern(self, event: Event) -> int:
        """Return the terminal id for ``event``, allocating one if needed."""
        eid = self._by_event.get(event)
        if eid is None:
            eid = len(self._by_id)
            self._by_event[event] = eid
            self._by_id.append(event)
        return eid

    def intern_name(self, name: str, payload: Hashable = None) -> int:
        """Shorthand for ``intern(Event(name, payload))``."""
        return self.intern(Event(name, payload))

    def lookup(self, event: Event) -> int | None:
        """Return the id for ``event`` without allocating, or ``None``."""
        return self._by_event.get(event)

    def event(self, eid: int) -> Event:
        """Return the :class:`Event` registered under terminal id ``eid``."""
        return self._by_id[eid]

    def name(self, eid: int) -> str:
        """Human-readable form of terminal id ``eid`` (for reports)."""
        try:
            return str(self._by_id[eid])
        except IndexError:
            return f"?{eid}"

    # -- serialization helpers -------------------------------------------

    def to_obj(self) -> list[list]:
        """Serialize to a JSON-compatible list (payloads must be JSON-able)."""
        out: list[list] = []
        for ev in self._by_id:
            payload = ev.payload
            if isinstance(payload, tuple):
                payload = ["__tuple__", *payload]
            out.append([ev.name, payload])
        return out

    @classmethod
    def from_obj(cls, obj: Iterable[Iterable]) -> "EventRegistry":
        """Inverse of :meth:`to_obj`."""
        reg = cls()
        for name, payload in obj:
            if isinstance(payload, list):
                if payload and payload[0] == "__tuple__":
                    payload = tuple(payload[1:])
                else:
                    payload = tuple(payload)
            reg.intern(Event(name, payload))
        return reg

    def merged_names(self) -> Mapping[int, str]:
        """Return {terminal id: printable name} for every known event."""
        return {i: str(ev) for i, ev in enumerate(self._by_id)}
