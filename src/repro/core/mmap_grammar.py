"""Zero-copy, mmap-backed on-disk format for compiled grammar artifacts.

The JSON trace format (:mod:`repro.core.trace_file`) is the *portable*
representation: diffable, greppable, versioned.  Loading it, however,
costs a full JSON parse plus the :class:`~repro.core.frozen.FrozenGrammar`
index build (occurrence counts, use sites, terminal positions) — paid
again by every process that opens the trace.  A multi-worker daemon
would pay it once per worker and hold N private copies of identical
read-only tables.

This module adds a compiled *artifact* next to the trace
(``<trace>.pygx``): a flat little-endian binary with every derived
table precomputed.  Workers ``mmap`` the artifact read-only, so the
kernel keeps **one** physical copy of the bulk data (rule bodies, use
sites, terminal positions) in the page cache no matter how many worker
processes map it.  :class:`MmapGrammar` decodes rows lazily with
``struct.unpack_from`` straight out of the mapping — a rule body that
prediction never touches is never materialised as Python objects — and
is value-identical to the :class:`FrozenGrammar` it was compiled from,
so predictions and explanations are byte-identical across the two load
paths (``tests/core/test_predict_equivalence.py`` proves it).

Cross-process compile stampede control: :func:`ensure_artifact` takes
an exclusive ``flock`` on a sidecar lock file, so when N workers start
against the same cold trace exactly one parses and compiles while the
others block on the lock and then map the finished artifact.  The
artifact header embeds the source trace's ``(mtime_ns, size)``
signature; a rewritten trace invalidates the artifact and the next
:func:`ensure_artifact` recompiles.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
from typing import Iterator, Mapping

from repro.core.events import EventRegistry
from repro.core.frozen import FrozenGrammar
from repro.core.record import ThreadTrace
from repro.core.timing import TimingTable
from repro.core.trace_file import Trace, TraceFormatError, _fsync_dir, load_trace

try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "ARTIFACT_SUFFIX",
    "ArtifactFormatError",
    "MmapGrammar",
    "artifact_is_fresh",
    "artifact_path_for",
    "compile_artifact",
    "ensure_artifact",
    "load_artifact",
    "write_artifact",
]

ARTIFACT_SUFFIX = ".pygx"

#: 8-byte magic; the last byte is the format version
_MAGIC = b"PYGX\x00\x00\x00\x01"

#: file header: magic, source mtime_ns, source size, meta blob length,
#: thread count, flags (reserved)
_HEADER = struct.Struct("<8sqQQII")

#: per-thread header: tid, event_count, timing blob length, trace_len,
#: rule count, terminal count, body pairs, use pairs, terminal-position pairs
_THREAD = struct.Struct("<qQQQIIQQQ")

_PAIR_BYTES = 16  # one (int64, int64) pair


class ArtifactFormatError(TraceFormatError):
    """The file is not a readable grammar artifact (or a stale one)."""


# ----------------------------------------------------------------------
# lazy views over the mapped region
# ----------------------------------------------------------------------


_MISSING = object()


class _LazyPairsMap(Mapping):
    """``{key: ((a, b), ...)}`` decoded per key, on first touch.

    ``offsets[i] .. offsets[i+1]`` delimit (in pairs) the rows of
    ``keys[i]`` inside the flat int64-pair array at ``base``.  Decoded
    tuples are cached per process; untouched keys stay as bytes in the
    shared mapping.
    """

    __slots__ = ("_buf", "_base", "_keys", "_index", "_offsets", "_cache")

    def __init__(self, buf, base: int, keys: tuple, offsets: tuple) -> None:
        self._buf = buf
        self._base = base
        self._keys = keys
        self._index = {k: i for i, k in enumerate(keys)}
        self._offsets = offsets
        self._cache: dict = {}

    def __getitem__(self, key):
        val = self._cache.get(key, _MISSING)
        if val is _MISSING:
            i = self._index[key]  # raises KeyError for unknown keys
            lo = self._offsets[i]
            n = self._offsets[i + 1] - lo
            flat = struct.unpack_from(
                f"<{2 * n}q", self._buf, self._base + _PAIR_BYTES * lo
            )
            val = tuple(zip(flat[::2], flat[1::2]))
            self._cache[key] = val
        return val

    def __iter__(self) -> Iterator:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key) -> bool:  # no decode just to answer `in`
        return key in self._index

    @property
    def decoded(self) -> int:
        """How many keys this process has materialised (observability)."""
        return len(self._cache)


class MmapGrammar(FrozenGrammar):
    """A :class:`FrozenGrammar` whose tables live in a shared mapping.

    ``occ`` (one int per rule) is decoded eagerly — it is tiny and on
    the probability hot path; ``bodies`` / ``uses`` /
    ``terminal_positions`` are :class:`_LazyPairsMap` views that decode
    a row on first access.  Every value is the exact int the source
    grammar held, so prediction arithmetic is byte-identical.
    """

    __slots__ = ("_mm",)

    @classmethod
    def from_mapping(cls, mm, **tables) -> "MmapGrammar":
        self = cls.from_tables(**tables)
        self._mm = mm  # keeps the mapping alive as long as the grammar
        return self

    def decode_stats(self) -> dict[str, int]:
        """How much of the mapped grammar this process has materialised."""
        return {
            "rules": len(self.bodies),
            "bodies_decoded": self.bodies.decoded,
            "uses_decoded": self.uses.decoded,
            "terminals_decoded": self.terminal_positions.decoded,
        }


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------


def artifact_path_for(trace_path: str | os.PathLike) -> str:
    """Where the compiled artifact for ``trace_path`` lives.

    Next to the trace by default; ``PYTHIA_ARTIFACT_DIR`` redirects
    artifacts into one directory (content-addressed by trace path) for
    read-only trace locations.
    """
    trace_path = os.path.abspath(os.fspath(trace_path))
    art_dir = os.environ.get("PYTHIA_ARTIFACT_DIR")
    if art_dir:
        digest = hashlib.sha1(trace_path.encode("utf-8")).hexdigest()[:20]
        return os.path.join(art_dir, f"{digest}{ARTIFACT_SUFFIX}")
    return trace_path + ARTIFACT_SUFFIX


def _source_signature(trace_path: str) -> tuple[int, int]:
    st = os.stat(trace_path)
    return (st.st_mtime_ns, st.st_size)


def _pack_pairs(out: bytearray, rows: list[tuple]) -> None:
    flat: list[int] = []
    for a, b in rows:
        flat.append(a)
        flat.append(b)
    out.extend(struct.pack(f"<{len(flat)}q", *flat))


def _grammar_sections(fg: FrozenGrammar) -> tuple[bytes, dict]:
    """Serialise one grammar's tables; returns (bytes, counts)."""
    rids = tuple(fg.bodies)  # storage order == the source dict's order
    terms = tuple(fg.terminal_positions)
    out = bytearray()
    out.extend(struct.pack(f"<{len(rids)}q", *rids))
    out.extend(struct.pack(f"<{len(rids)}q", *(fg.occ[r] for r in rids)))

    def table(keys, source) -> int:
        offsets = [0]
        rows: list[tuple] = []
        for key in keys:
            rows.extend(source[key])
            offsets.append(len(rows))
        out.extend(struct.pack(f"<{len(offsets)}Q", *offsets))
        _pack_pairs(out, rows)
        return len(rows)

    body_pairs = table(rids, fg.bodies)
    uses_pairs = table(rids, fg.uses)
    out.extend(struct.pack(f"<{len(terms)}q", *terms))
    term_pairs = table(terms, fg.terminal_positions)
    return bytes(out), {
        "rule_count": len(rids),
        "term_count": len(terms),
        "body_pairs": body_pairs,
        "uses_pairs": uses_pairs,
        "term_pairs": term_pairs,
    }


def write_artifact(
    trace: Trace, artifact_path: str | os.PathLike, source_sig: tuple[int, int]
) -> None:
    """Compile ``trace`` into the artifact at ``artifact_path``.

    Atomic and concurrent-writer safe the same way
    :func:`~repro.core.trace_file.save_trace` is: staged into a unique
    temporary file, fsynced, then renamed into place.
    """
    artifact_path = os.fspath(artifact_path)
    meta_blob = json.dumps(
        {"events": trace.registry.to_obj(), "meta": trace.meta},
        separators=(",", ":"),
    ).encode("utf-8")
    body = bytearray()
    body.extend(
        _HEADER.pack(
            _MAGIC, source_sig[0], source_sig[1], len(meta_blob),
            len(trace.threads), 0,
        )
    )
    body.extend(meta_blob)
    for tid, tt in trace.threads.items():
        timing_blob = (
            json.dumps(tt.timing.to_obj(), separators=(",", ":")).encode("utf-8")
            if tt.timing is not None
            else b""
        )
        section, counts = _grammar_sections(tt.grammar)
        body.extend(
            _THREAD.pack(
                tid, tt.event_count, len(timing_blob), tt.grammar.trace_len,
                counts["rule_count"], counts["term_count"],
                counts["body_pairs"], counts["uses_pairs"], counts["term_pairs"],
            )
        )
        body.extend(timing_blob)
        body.extend(section)
    tmp = f"{artifact_path}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, artifact_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(os.path.dirname(artifact_path))


def compile_artifact(
    trace_path: str | os.PathLike, artifact_path: str | os.PathLike | None = None
) -> str:
    """Parse ``trace_path`` (JSON) and write its compiled artifact."""
    trace_path = os.path.abspath(os.fspath(trace_path))
    artifact_path = (
        os.fspath(artifact_path) if artifact_path is not None
        else artifact_path_for(trace_path)
    )
    sig = _source_signature(trace_path)
    write_artifact(load_trace(trace_path), artifact_path, sig)
    return artifact_path


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------


def _read_header(buf) -> tuple[tuple[int, int], int, int]:
    """Validated header -> (source signature, meta length, thread count)."""
    if len(buf) < _HEADER.size:
        raise ArtifactFormatError("artifact truncated before its header")
    magic, mtime_ns, size, meta_len, threads, _flags = _HEADER.unpack_from(buf, 0)
    if magic[:4] != _MAGIC[:4]:
        raise ArtifactFormatError("not a pythia grammar artifact")
    if magic != _MAGIC:
        raise ArtifactFormatError(
            f"unsupported artifact version {magic[-1]} (this build reads {_MAGIC[-1]})"
        )
    return (mtime_ns, size), meta_len, threads


def artifact_is_fresh(
    artifact_path: str | os.PathLike, source_sig: tuple[int, int]
) -> bool:
    """True when the artifact exists and was compiled from ``source_sig``."""
    try:
        with open(artifact_path, "rb") as fh:
            head = fh.read(_HEADER.size)
        sig, _meta_len, _threads = _read_header(head)
    except (OSError, ArtifactFormatError):
        return False
    return sig == source_sig


def load_artifact(
    artifact_path: str | os.PathLike,
    expected_signature: tuple[int, int] | None = None,
) -> Trace:
    """Map an artifact and return a :class:`Trace` of :class:`MmapGrammar`.

    The returned grammars hold the mapping open; the bulk tables stay
    in the (kernel-shared) page cache and decode lazily.  Raises
    :class:`ArtifactFormatError` for corrupt files and for a signature
    mismatch when ``expected_signature`` is given (stale artifact).
    """
    artifact_path = os.fspath(artifact_path)
    with open(artifact_path, "rb") as fh:
        try:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-length file
            raise ArtifactFormatError(f"empty artifact {artifact_path!r}") from exc
    try:
        sig, meta_len, thread_count = _read_header(mm)
        if expected_signature is not None and sig != expected_signature:
            raise ArtifactFormatError(
                f"stale artifact {artifact_path!r}: source trace changed"
            )
        pos = _HEADER.size
        try:
            meta_obj = json.loads(mm[pos : pos + meta_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArtifactFormatError(f"corrupt artifact metadata: {exc}") from exc
        pos += meta_len
        threads: dict[int, ThreadTrace] = {}
        for _ in range(thread_count):
            if pos + _THREAD.size > len(mm):
                raise ArtifactFormatError("artifact truncated in a thread header")
            (
                tid, event_count, timing_len, trace_len,
                rule_count, term_count, body_pairs, uses_pairs, term_pairs,
            ) = _THREAD.unpack_from(mm, pos)
            pos += _THREAD.size
            timing = None
            if timing_len:
                timing = TimingTable.from_obj(
                    json.loads(mm[pos : pos + timing_len].decode("utf-8"))
                )
            pos += timing_len
            end = (
                pos
                + 2 * 8 * rule_count  # rids + occ
                + 8 * (rule_count + 1) * 2  # body + uses offsets
                + 8 * term_count + 8 * (term_count + 1)  # terms + offsets
                + _PAIR_BYTES * (body_pairs + uses_pairs + term_pairs)
            )
            if end > len(mm):
                raise ArtifactFormatError("artifact truncated in a grammar section")
            rids = struct.unpack_from(f"<{rule_count}q", mm, pos)
            pos += 8 * rule_count
            occ_values = struct.unpack_from(f"<{rule_count}q", mm, pos)
            pos += 8 * rule_count

            def offsets_then_pairs(count: int, pairs: int) -> tuple[tuple, int]:
                nonlocal pos
                offs = struct.unpack_from(f"<{count + 1}Q", mm, pos)
                pos += 8 * (count + 1)
                base = pos
                pos += _PAIR_BYTES * pairs
                return offs, base

            body_offs, body_base = offsets_then_pairs(rule_count, body_pairs)
            uses_offs, uses_base = offsets_then_pairs(rule_count, uses_pairs)
            terms = struct.unpack_from(f"<{term_count}q", mm, pos)
            pos += 8 * term_count
            term_offs, term_base = offsets_then_pairs(term_count, term_pairs)
            grammar = MmapGrammar.from_mapping(
                mm,
                bodies=_LazyPairsMap(mm, body_base, rids, body_offs),
                occ=dict(zip(rids, occ_values)),
                uses=_LazyPairsMap(mm, uses_base, rids, uses_offs),
                terminal_positions=_LazyPairsMap(mm, term_base, terms, term_offs),
                trace_len=trace_len,
            )
            threads[tid] = ThreadTrace(
                grammar=grammar, timing=timing, event_count=event_count
            )
    except ArtifactFormatError:
        mm.close()
        raise
    except (struct.error, KeyError, TypeError, ValueError) as exc:
        mm.close()
        raise ArtifactFormatError(
            f"malformed artifact {artifact_path!r}: {exc}"
        ) from exc
    return Trace(
        registry=EventRegistry.from_obj(meta_obj["events"]),
        threads=threads,
        meta=meta_obj.get("meta", {}),
    )


# ----------------------------------------------------------------------
# compile-once-per-host orchestration
# ----------------------------------------------------------------------


def ensure_artifact(
    trace_path: str | os.PathLike,
    artifact_path: str | os.PathLike | None = None,
    *,
    force: bool = False,
) -> tuple[str, str]:
    """Make sure a fresh artifact exists; returns ``(path, outcome)``.

    ``outcome`` is how this caller got it:

    - ``"reused"``   — a fresh artifact was already on disk;
    - ``"waited"``   — another process held the compile lock; we
      blocked until it finished and mapped its output (the
      cross-process analog of the trace store's ``waiters_ok``);
    - ``"compiled"`` — this caller parsed the trace and wrote the
      artifact (exactly one per host per trace version).

    The lock is an exclusive ``flock`` on ``<artifact>.lock`` so the
    stampede of N workers starting together costs one parse + compile.
    Where ``flock`` is unavailable the compile may race, but the
    atomic rename keeps every reader consistent.
    """
    trace_path = os.path.abspath(os.fspath(trace_path))
    artifact_path = (
        os.fspath(artifact_path) if artifact_path is not None
        else artifact_path_for(trace_path)
    )
    sig = _source_signature(trace_path)  # FileNotFoundError for absent traces
    if not force and artifact_is_fresh(artifact_path, sig):
        return artifact_path, "reused"
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        write_artifact(load_trace(trace_path), artifact_path, sig)
        return artifact_path, "compiled"
    lock_path = artifact_path + ".lock"
    with open(lock_path, "ab") as lock_fh:
        waited = False
        try:
            fcntl.flock(lock_fh, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            waited = True
            fcntl.flock(lock_fh, fcntl.LOCK_EX)
        try:
            if not force and artifact_is_fresh(artifact_path, sig):
                # somebody compiled while we raced for the lock
                return artifact_path, "waited" if waited else "reused"
            write_artifact(load_trace(trace_path), artifact_path, sig)
            return artifact_path, "compiled"
        finally:
            fcntl.flock(lock_fh, fcntl.LOCK_UN)
