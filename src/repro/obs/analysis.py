"""Offline trace analysis: a Pipit-style table over merged journals.

The tracing layer leaves artifacts on disk — Chrome-trace span dumps
(:meth:`~repro.obs.spans.SpanRecorder.dump`, ``PYTHIA_SPANS_DUMP``)
and flight-recorder JSONL journals (``PYTHIA_FLIGHT_DIR``).  This
module loads any mix of them into one columnar :class:`TraceTable`
(rows sorted by timestamp, one dict per event) with the small
dataframe-ish verbs that make trace data usable without pandas:
``filter`` / ``groupby`` / ``percentile`` / ``summary`` — plus the
request-tracing specific ones, ``requests`` (client-side request
spans), ``critical_path`` (one request's wire/queue/handler
decomposition) and ``decompose`` (the decomposition for every traced
request, which is how ``pythia-trace analyze`` reproduces the live
``timing_report`` offline).

Column conventions (missing values are ``None``):

``name``   event name (``client.<op>``, ``server.<op>``, flight kinds)
``ts``     start, µs (perf-counter based; comparable within one process)
``dur``    duration, µs (0 for instant events)
``pid`` / ``tid`` / ``source``  origin process/thread/file
``sid`` / ``rid`` / ``op``      tracing context, when tagged
``wire_us`` / ``queue_us`` / ``handler_us`` / ``total_us``  timing
plus every other span attr / journal field, flattened into the row.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Iterable

__all__ = ["TraceTable", "load"]

#: row keys that are structural, not attributes
_CORE = ("name", "ph", "ts", "dur", "pid", "tid", "source")


def _rows_from_chrome(obj: dict, source: str) -> list[dict]:
    rows: list[dict] = []
    for ev in obj.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "M":
            continue  # metadata (thread names) is not an event row
        row = {
            "name": ev.get("name"),
            "ph": ph,
            "ts": float(ev.get("ts", 0.0)),
            "dur": float(ev.get("dur", 0.0) or 0.0),
            "pid": ev.get("pid"),
            "tid": ev.get("tid"),
            "source": source,
        }
        args = ev.get("args")
        if isinstance(args, dict):
            for key, value in args.items():
                row.setdefault(key, value)
        rows.append(row)
    return rows


def _rows_from_jsonl(text: str, source: str) -> list[dict]:
    rows: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        if not isinstance(entry, dict):
            continue
        row = {
            "name": entry.get("kind", "entry"),
            "ph": "i",
            "ts": float(entry.get("t", 0.0)) * 1e6,
            "dur": 0.0,
            "pid": None,
            "tid": None,
            "source": source,
        }
        for key, value in entry.items():
            if key not in ("kind", "t"):
                row.setdefault(key, value)
        rows.append(row)
    return rows


class TraceTable:
    """An in-memory columnar view over merged trace journals."""

    def __init__(self, rows: Iterable[dict]) -> None:
        self.rows = sorted(rows, key=lambda r: r.get("ts") or 0.0)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_chrome_trace(cls, obj: dict, *, source: str = "<chrome>") -> "TraceTable":
        """From a Chrome trace-event object (span or flight dumps)."""
        return cls(_rows_from_chrome(obj, source))

    @classmethod
    def from_flight_jsonl(cls, text: str, *, source: str = "<jsonl>") -> "TraceTable":
        """From a flight-recorder JSONL journal."""
        return cls(_rows_from_jsonl(text, source))

    @classmethod
    def load(cls, *paths: str | os.PathLike) -> "TraceTable":
        """Load and merge any mix of Chrome-trace JSON and JSONL files.

        The format is sniffed per file: a body whose first non-space
        byte is ``{`` and that parses as one JSON object is treated as
        a Chrome trace; anything else as JSON lines.
        """
        rows: list[dict] = []
        for path in paths:
            path = os.fspath(path)
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
            source = os.path.basename(path)
            stripped = text.lstrip()
            obj = None
            if stripped.startswith("{"):
                try:
                    obj = json.loads(text)
                except json.JSONDecodeError:
                    obj = None
            if isinstance(obj, dict) and "traceEvents" in obj:
                rows.extend(_rows_from_chrome(obj, source))
            else:
                rows.extend(_rows_from_jsonl(text, source))
        return cls(rows)

    # -- the dataframe-ish verbs ----------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, key: str) -> list:
        """One column (``None`` where a row lacks the key)."""
        return [row.get(key) for row in self.rows]

    def filter(
        self, predicate: Callable[[dict], bool] | None = None, **eq
    ) -> "TraceTable":
        """Rows matching a predicate and/or exact column values.

        ``t.filter(name="client.observe_predict", sid="c1f...")`` or
        ``t.filter(lambda r: (r.get("dur") or 0) > 100)``.
        """
        rows = self.rows
        if predicate is not None:
            rows = [r for r in rows if predicate(r)]
        for key, value in eq.items():
            rows = [r for r in rows if r.get(key) == value]
        return TraceTable(rows)

    def groupby(self, key: str) -> dict[object, "TraceTable"]:
        """Split into sub-tables by a column's value (None groups too)."""
        groups: dict[object, list[dict]] = {}
        for row in self.rows:
            groups.setdefault(row.get(key), []).append(row)
        return {value: TraceTable(rows) for value, rows in groups.items()}

    def percentile(self, key: str, q: float) -> float:
        """The ``q``-percentile (0..100) of a numeric column.

        Linear interpolation between order statistics; rows without
        the key (or with non-numeric values) are skipped.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        values = sorted(
            v for v in self.column(key) if isinstance(v, (int, float))
        )
        if not values:
            return 0.0
        if len(values) == 1:
            return float(values[0])
        pos = (q / 100.0) * (len(values) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(values) - 1)
        frac = pos - lo
        return float(values[lo]) + (float(values[hi]) - float(values[lo])) * frac

    def summary(self, key: str = "dur") -> dict[str, dict]:
        """Per-name aggregate of a numeric column: count/mean/p50/p99/max."""
        out: dict[str, dict] = {}
        for name, sub in sorted(self.groupby("name").items(), key=lambda kv: str(kv[0])):
            values = [v for v in sub.column(key) if isinstance(v, (int, float))]
            if not values:
                continue
            out[str(name)] = {
                "count": len(values),
                "mean": sum(values) / len(values),
                "p50": sub.percentile(key, 50),
                "p99": sub.percentile(key, 99),
                "max": max(values),
            }
        return out

    # -- request tracing ------------------------------------------------

    def requests(self) -> "TraceTable":
        """Client-side request spans (rows named ``client.<op>``)."""
        return self.filter(
            lambda r: isinstance(r.get("name"), str)
            and r["name"].startswith("client.")
        )

    def critical_path(self, sid: str, rid: int) -> list[tuple[str, float]]:
        """One traced request's component breakdown, ordered as executed.

        Returns ``[(component, µs), ...]`` — ``wire`` (client->daemon +
        daemon->client residual), ``queue`` (frame arrival to handler
        start) and ``handler`` — from the client span; the matching
        ``server.<op>`` span (same sid/rid), when present in the merged
        table, cross-checks the handler time.  Empty when the request
        was not traced.
        """
        client = self.requests().filter(sid=sid, rid=rid)
        if not len(client):
            return []
        row = client.rows[-1]
        path: list[tuple[str, float]] = []
        for component in ("wire", "queue", "handler"):
            value = row.get(f"{component}_us")
            if isinstance(value, (int, float)):
                path.append((component, float(value)))
        if not path and isinstance(row.get("total_us"), (int, float)):
            path.append(("total", float(row["total_us"])))
        return path

    def decompose(self) -> "TraceTable":
        """One row per traced client request: the offline timing table.

        Columns: op, sid, rid, total_us, wire_us, queue_us, handler_us,
        and — when the daemon's span journal is part of the merge —
        ``server_handler_us`` from the correlated ``server.<op>`` span.
        This is the offline reproduction of the client's live
        ``timing_report``.
        """
        server_by_key: dict[tuple[object, object], dict] = {}
        for row in self.rows:
            name = row.get("name")
            if isinstance(name, str) and name.startswith("server."):
                key = (row.get("sid"), row.get("rid"))
                if key[0] is not None and key[1] is not None:
                    server_by_key[key] = row
        out: list[dict] = []
        for row in self.requests():
            rec = {
                "name": row.get("name"),
                "ts": row.get("ts"),
                "dur": row.get("dur"),
                "pid": row.get("pid"),
                "tid": row.get("tid"),
                "source": row.get("source"),
                "op": row.get("op"),
                "sid": row.get("sid"),
                "rid": row.get("rid"),
                "total_us": row.get("total_us"),
                "wire_us": row.get("wire_us"),
                "queue_us": row.get("queue_us"),
                "handler_us": row.get("handler_us"),
            }
            server = server_by_key.get((row.get("sid"), row.get("rid")))
            if server is not None:
                rec["server_handler_us"] = server.get("handler_us")
            out.append(rec)
        return TraceTable(out)

    def report(self) -> dict:
        """The ``pythia-trace analyze`` payload: per-op decomposition.

        ``{"requests": N, "sessions": [...sids...], "ops": {op:
        {component: {count, mean_us, p50_us, p99_us, max_us}}}}`` —
        the same shape as ``PythiaClient.timing_report`` so the live
        and offline views diff cleanly.
        """
        decomposed = self.decompose()
        ops: dict[str, dict[str, dict]] = {}
        for op, sub in sorted(decomposed.groupby("op").items(), key=lambda kv: str(kv[0])):
            if op is None:
                continue
            per_op: dict[str, dict] = {}
            for component in ("total", "wire", "queue", "handler"):
                key = f"{component}_us"
                values = [v for v in sub.column(key) if isinstance(v, (int, float))]
                if not values:
                    continue
                per_op[component] = {
                    "count": len(values),
                    "mean_us": round(sum(values) / len(values), 1),
                    "p50_us": round(sub.percentile(key, 50), 1),
                    "p99_us": round(sub.percentile(key, 99), 1),
                    "max_us": round(max(values), 1),
                }
            ops[str(op)] = per_op
        sids = sorted(
            {s for s in decomposed.column("sid") if isinstance(s, str)}
        )
        return {"requests": len(decomposed), "sessions": sids, "ops": ops}


def load(*paths: str | os.PathLike) -> TraceTable:
    """Module-level alias of :meth:`TraceTable.load`."""
    return TraceTable.load(*paths)
