"""Per-session telemetry for the oracle daemon: who is asking what.

Context propagation (:mod:`repro.server.client` stamps every request
with a client-lifetime session id and a monotonically increasing
request id) makes requests attributable; :class:`SessionStats` is the
daemon-side table that accumulates them — per-session op counts,
error counts, request-id continuity, and queue/handler latency digests.

The table is a bounded LRU keyed by client session id: one daemon can
serve an unbounded population of (possibly short-lived) clients, so
the table — and everything derived from it, including the labeled
``pythia_session_*`` metric series — must not grow with the number of
session ids ever seen.  When a new session id would exceed
``capacity`` the least-recently-active entry is evicted (``evicted``
counts them) and its callbacks fire so the daemon can drop the
evicted id's metric series.

``rid_regressions`` counts requests whose request id did not move
forward — a duplicate or replayed rid.  A correct client never
produces one, even across reconnect+resync (retries of one logical
request are re-stamped with a fresh rid), so the chaos suite asserts
this stays zero through cut connections and daemon restarts.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

__all__ = ["SessionEntry", "SessionStats", "DEFAULT_SESSION_CAPACITY"]

#: sessions tracked before LRU eviction kicks in
DEFAULT_SESSION_CAPACITY = 256


class _LatencyWindow:
    """Recent (queue, handler) latency pairs, with exact percentiles.

    The record path is one list append of the pair; all percentile
    math happens when somebody snapshots.  Bounded: once the buffer
    doubles past ``keep`` the oldest half is dropped, so the digest
    always covers the most recent ``keep``..2·``keep`` samples.
    Exact-but-windowed beats bucketed-but-cumulative here — a
    session's recent behaviour is what an operator triages on.
    """

    __slots__ = ("keep", "_cap", "_samples")

    def __init__(self, keep: int = 2048) -> None:
        self.keep = keep
        self._cap = 2 * keep
        self._samples: list[tuple[float, float]] = []

    def observe(self, queue_s: float, handler_s: float) -> None:
        samples = self._samples
        samples.append((queue_s, handler_s))
        if len(samples) >= self._cap:
            del samples[: -self.keep]

    def percentiles_us(self) -> tuple[dict, dict]:
        """``({p50, p99, max}, ...)`` for queue then handler, in µs."""
        pairs = self._samples
        if not pairs:
            return ({"p50": 0.0, "p99": 0.0, "max": 0.0},
                    {"p50": 0.0, "p99": 0.0, "max": 0.0})
        digests = []
        for samples in (
            sorted(q for q, _ in pairs), sorted(h for _, h in pairs)
        ):
            n = len(samples)
            digests.append({
                "p50": round(samples[(n - 1) // 2] * 1e6, 1),
                "p99": round(samples[min(n - 1, (99 * n) // 100)] * 1e6, 1),
                "max": round(samples[-1] * 1e6, 1),
            })
        return digests[0], digests[1]


class SessionEntry:
    """Accumulated telemetry of one client session id."""

    __slots__ = (
        "sid",
        "first_seen",
        "last_seen",
        "requests",
        "errors",
        "last_rid",
        "rid_regressions",
        "ops",
        "lat",
    )

    def __init__(self, sid: str, now: float) -> None:
        self.sid = sid
        self.first_seen = now
        self.last_seen = now
        self.requests = 0
        self.errors = 0
        self.last_rid = 0
        self.rid_regressions = 0
        self.ops: dict[str, int] = {}
        self.lat = _LatencyWindow()

    def snapshot(self) -> dict:
        """JSON-safe view (served by the daemon's ``sessions`` op)."""
        queue_us, handler_us = self.lat.percentiles_us()
        return {
            "sid": self.sid,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "age_s": round(time.time() - self.last_seen, 3),
            "requests": self.requests,
            "errors": self.errors,
            "last_rid": self.last_rid,
            "rid_regressions": self.rid_regressions,
            "ops": dict(self.ops),
            "queue_us": queue_us,
            "handler_us": handler_us,
        }


class SessionStats:
    """Bounded, thread-safe LRU table of :class:`SessionEntry`.

    ``on_evict`` callbacks receive the evicted entry (under no lock)
    so the owner can release per-session resources — the daemon uses
    this to drop the session's ``pythia_session_*`` metric series.
    """

    def __init__(self, capacity: int = DEFAULT_SESSION_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.evicted = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, SessionEntry] = OrderedDict()
        self._mru: str | None = None  # skips the LRU touch on repeat hits
        self._on_evict: list[Callable[[SessionEntry], None]] = []
        #: deferred-accounting buffer: producers append raw
        #: ``(sid, op, rid, queue_s, handler_s, error)`` tuples with no
        #: lock (one GIL-atomic list append per request — the cheapest
        #: thing the per-request path can do) and :meth:`fold` applies
        #: them in a batch.  One shared list, not one per producer, so
        #: cross-producer arrival order — which rid continuity depends
        #: on — is preserved by construction.  Every reader folds
        #: first; don't mix direct :meth:`record` calls and buffered
        #: appends for the same sid (their relative order is undefined).
        self.pending: list[tuple] = []

    def __len__(self) -> int:
        self.fold()
        with self._lock:
            return len(self._entries)

    def on_evict(self, fn: Callable[[SessionEntry], None]) -> None:
        """Register a callback fired with each evicted entry."""
        with self._lock:
            if fn not in self._on_evict:
                self._on_evict.append(fn)

    def _apply_locked(
        self,
        sid: str,
        op: str,
        rid: int | None,
        queue_s: float,
        handler_s: float,
        error: bool,
        now: float,
        evicted: list,
    ) -> None:
        """Fold one request into the table (caller holds ``_lock``).

        The steady state (same session as last time) touches no LRU
        machinery — the ``_mru`` cache proves the entry is already at
        the hot end of the OrderedDict.
        """
        entries = self._entries
        entry = entries.get(sid)
        if entry is None:
            entry = entries[sid] = SessionEntry(sid, now)
            self._mru = sid
            while len(entries) > self.capacity:
                _, old = entries.popitem(last=False)
                self.evicted += 1
                evicted.append(old)
        elif self._mru != sid:
            entries.move_to_end(sid)
            self._mru = sid
        entry.last_seen = now
        entry.requests += 1
        if error:
            entry.errors += 1
        ops = entry.ops
        ops[op] = ops.get(op, 0) + 1
        if rid is not None:
            if rid > entry.last_rid:
                entry.last_rid = rid
            else:
                entry.rid_regressions += 1
        entry.lat.observe(queue_s, handler_s)

    def _fire_evictions(self, evicted: list) -> None:
        """Run eviction callbacks outside the lock."""
        with self._lock:
            callbacks = list(self._on_evict)
        for old in evicted:
            for fn in callbacks:
                fn(old)

    def record(
        self,
        sid: str,
        op: str,
        rid: int | None,
        queue_s: float,
        handler_s: float,
        error: bool = False,
    ) -> None:
        """Account one dispatched request to session ``sid``, immediately.

        The daemon's per-request path uses :attr:`pending` +
        :meth:`fold` instead; this direct form serves tests and any
        owner without a batching loop.
        """
        evicted: list[SessionEntry] = []
        with self._lock:
            self._apply_locked(
                sid, op, rid, queue_s, handler_s, error, time.time(), evicted
            )
        if evicted:
            self._fire_evictions(evicted)

    def fold(self) -> None:
        """Drain :attr:`pending` into the table.

        Safe against concurrent producers: the buffered prefix is
        sliced out under the lock while appends keep landing beyond it.
        ``last_seen`` is stamped with the fold time — at most one batch
        (or one reader latency) behind the request itself.
        """
        pending = self.pending
        if not pending:
            return
        evicted: list[SessionEntry] = []
        with self._lock:
            n = len(pending)
            items = pending[:n]
            del pending[:n]
            now = time.time()
            for sid, op, rid, queue_s, handler_s, error in items:
                self._apply_locked(
                    sid, op, rid, queue_s, handler_s, error, now, evicted
                )
        if evicted:
            self._fire_evictions(evicted)

    def get(self, sid: str) -> SessionEntry | None:
        """The live entry for ``sid`` (no LRU touch), or None."""
        self.fold()
        with self._lock:
            return self._entries.get(sid)

    def entries(self) -> list[SessionEntry]:
        """Current entries, least-recently-active first."""
        self.fold()
        with self._lock:
            return list(self._entries.values())

    def snapshot(self) -> dict:
        """JSON-safe table view: the ``sessions`` op's payload.

        Built under the table lock: each row's pending latency samples
        fold into the digests here, and a concurrent ``record`` must
        not append to a list mid-fold.
        """
        self.fold()
        with self._lock:
            return {
                "capacity": self.capacity,
                "tracked": len(self._entries),
                "evicted": self.evicted,
                "sessions": [e.snapshot() for e in self._entries.values()],
            }
