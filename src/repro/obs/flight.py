"""A flight recorder for oracle sessions: the last N things that happened.

When a prediction goes wrong in a long run, the interesting part is the
minute *before* the alarm — what the tracker observed, what it claimed,
how the candidate set behaved, what drift state it was in.  A
:class:`FlightRecorder` is a bounded ring buffer journaling exactly
that, cheap enough to leave on in production:

- **anomalies** (unexpected restarts, unknown events) are journaled
  eagerly with full detail — those tracker paths are already cold;
- **steady state** is run-length compressed: every tracker tick (the
  attached watchers' ``stride``, default every 32 observations;
  stretched to every 4th boundary while a co-attached drift monitor
  reports calm) one ``run`` entry summarizes the block — observations,
  matches, candidate count, drift state, the latest prediction — so an
  in-sync stream costs a few nanoseconds per event, not an entry per
  event;
- **drift transitions** are journaled by the
  :class:`~repro.obs.drift.DriftMonitor` with a full signal snapshot,
  and trigger :meth:`FlightRecorder.auto_dump`.

The journal exports as JSONL (:meth:`to_jsonl`) and as a Chrome-trace
object (:meth:`to_chrome_trace`) loadable in ``chrome://tracing`` /
Perfetto.  ``PYTHIA_FLIGHT_DIR`` (or ``dump_dir=``) names a directory
for dumps; live recorders register in a weak set so a dying test run or
the daemon can :func:`dump_active` every session post-mortem.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
import weakref
from time import perf_counter

__all__ = ["FlightRecorder", "active_recorders", "dump_active"]

#: journal entries kept per session by default
DEFAULT_CAPACITY = 256

#: environment variable naming the default dump directory
FLIGHT_DIR_ENV = "PYTHIA_FLIGHT_DIR"

_ACTIVE: weakref.WeakSet = weakref.WeakSet()
_IDS = itertools.count(1)
_DUMP_LOCK = threading.Lock()


class FlightRecorder:
    """Bounded journal of one oracle session's recent history.

    Attach with :meth:`~repro.core.predict.PythiaPredict.attach_flight`.
    ``state`` / ``state_code`` mirror the session's drift state (written
    by the :class:`~repro.obs.drift.DriftMonitor` on transitions) and
    ``last_pred`` the latest prediction — both are plain attributes so
    the tracker's hot paths pay one pointer store, not a method call.
    """

    __slots__ = (
        "capacity",
        "session",
        "stride",
        "dump_dir",
        "state",
        "state_code",
        "last_pred",
        "last_distance",
        "dumps",
        "_ring",
        "_head",
        "_count",
        "_seq",
        "_prev_observed",
        "_prev_matched",
        "_prev_unexpected",
        "_prev_unknown",
        "_tid",
        "__weakref__",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        session: str = "pythia",
        stride: int = 32,
        dump_dir: str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.capacity = capacity
        self.session = session
        self.stride = stride
        self.dump_dir = dump_dir
        self.state = "ok"
        self.state_code = 0
        #: latest Prediction object and its query distance — existing
        #: references, so the predict hot path stores two pointers and
        #: allocates nothing
        self.last_pred = None
        self.last_distance = 0
        self.dumps = 0
        #: journal ring: fixed-arity lists mutated in place on reuse, so
        #: a steady-state tick allocates nothing but the timestamp float
        self._ring: list = [None] * capacity
        self._head = 0
        self._count = 0
        self._seq = 0
        # tracker counters at the last tick
        self._prev_observed = 0
        self._prev_matched = 0
        self._prev_unexpected = 0
        self._prev_unknown = 0
        self._tid = next(_IDS)
        _ACTIVE.add(self)

    def __len__(self) -> int:
        return self._count

    def _slot(self) -> list:
        """Next ring slot as a reusable 11-element list.

        Layout: ``[seq, t, kind, *fields]`` where fields depend on kind —
        run: delta, matched, unexpected, unknown, candidates, state,
        distance, prediction; observe: outcome, terminal, candidates,
        state, distance, prediction, count; transition: old, new,
        snapshot; note: message, fields.  Unused tail slots are None.
        """
        ring = self._ring
        i = self._head
        entry = ring[i]
        if entry is None:
            entry = ring[i] = [None] * 11
        self._head = (i + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1
        return entry

    # ------------------------------------------------------------------
    # feeding (called by the tracker / drift monitor)
    # ------------------------------------------------------------------

    def tick(self, tracker) -> None:
        """Journal one run-length entry summarizing the block since the
        last tick; called by the tracker every ``stride`` observations."""
        observed = tracker.observed
        delta = observed - self._prev_observed
        if delta <= 0:
            return
        matched = tracker.matched
        unexpected = tracker.unexpected
        unknown = tracker.unknown
        self._seq = seq = self._seq + 1
        # _slot(), inlined: this is the only journaling call on the
        # steady-state path
        ring = self._ring
        i = self._head
        entry = ring[i]
        if entry is None:
            entry = ring[i] = [None] * 11
        self._head = (i + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1
        entry[0] = seq
        entry[1] = perf_counter()
        entry[2] = "run"
        entry[3] = delta
        entry[4] = matched - self._prev_matched
        entry[5] = unexpected - self._prev_unexpected
        entry[6] = unknown - self._prev_unknown
        entry[7] = len(tracker.candidates)
        entry[8] = self.state_code
        entry[9] = self.last_distance
        entry[10] = self.last_pred
        self._prev_observed = observed
        self._prev_matched = matched
        self._prev_unexpected = unexpected
        self._prev_unknown = unknown

    def anomaly(self, outcome: str, terminal: int | None, tracker) -> None:
        """Journal one anomalous observation (``restart`` / ``unknown``)
        with full detail; called from the tracker's cold paths.

        Consecutive repeats of the same anomaly collapse into one entry
        with a ``count`` — an unknown-event storm must not flush the
        context (including any drift transition) out of the ring.
        """
        if self._count:
            last = self._ring[(self._head - 1) % self.capacity]
            if last[2] == "observe" and last[3] == outcome and last[4] == terminal:
                last[1] = perf_counter()
                last[5] = len(tracker.candidates)
                last[6] = self.state_code
                last[7] = self.last_distance
                last[8] = self.last_pred
                last[9] = last[9] + 1
                return
        self._seq = seq = self._seq + 1
        entry = self._slot()
        entry[0] = seq
        entry[1] = perf_counter()
        entry[2] = "observe"
        entry[3] = outcome
        entry[4] = terminal
        entry[5] = len(tracker.candidates)
        entry[6] = self.state_code
        entry[7] = self.last_distance
        entry[8] = self.last_pred
        entry[9] = 1
        entry[10] = None

    def mark_transition(self, old: str, new: str, snapshot: dict) -> None:
        """Journal a drift state transition with its signal snapshot."""
        self._seq = seq = self._seq + 1
        entry = self._slot()
        entry[0] = seq
        entry[1] = perf_counter()
        entry[2] = "transition"
        entry[3] = old
        entry[4] = new
        entry[5] = snapshot
        entry[6] = entry[7] = entry[8] = entry[9] = entry[10] = None

    def note(self, message: str, **fields) -> None:
        """Journal a free-form marker (session open/close, experiments)."""
        self._seq = seq = self._seq + 1
        entry = self._slot()
        entry[0] = seq
        entry[1] = perf_counter()
        entry[2] = "note"
        entry[3] = message
        entry[4] = fields
        entry[5] = entry[6] = entry[7] = entry[8] = entry[9] = entry[10] = None

    # ------------------------------------------------------------------
    # reading / exporting
    # ------------------------------------------------------------------

    @staticmethod
    def _pred_obj(distance: int, pred) -> dict | None:
        if pred is None:
            return None
        return {
            "distance": distance,
            "terminal": pred.terminal,
            "probability": pred.probability,
        }

    def entries(self) -> list[dict]:
        """The journal, oldest first, as JSON-safe dicts."""
        ring = self._ring
        cap = self.capacity
        count = self._count
        start = (self._head - count) % cap
        out: list[dict] = []
        for k in range(count):
            raw = ring[(start + k) % cap]
            kind = raw[2]
            entry: dict = {
                "seq": raw[0],
                "t": raw[1],
                "kind": kind,
                "session": self.session,
            }
            if kind == "run":
                entry.update(
                    events=raw[3],
                    matched=raw[4],
                    unexpected=raw[5],
                    unknown=raw[6],
                    candidates=raw[7],
                    drift_state=raw[8],
                    prediction=self._pred_obj(raw[9], raw[10]),
                )
            elif kind == "observe":
                entry.update(
                    outcome=raw[3],
                    terminal=raw[4],
                    candidates=raw[5],
                    drift_state=raw[6],
                    prediction=self._pred_obj(raw[7], raw[8]),
                    count=raw[9],
                )
            elif kind == "transition":
                entry.update(**{"from": raw[3], "to": raw[4], "snapshot": raw[5]})
            else:
                entry.update(message=raw[3], **raw[4])
            out.append(entry)
        return out

    def to_jsonl(self) -> str:
        """The journal as JSON Lines (one entry per line)."""
        return "".join(json.dumps(e, sort_keys=True) + "\n" for e in self.entries())

    def to_chrome_trace(self) -> dict:
        """The journal as a Chrome-trace object (instant events).

        Each recorder gets its own ``tid`` under the real process
        ``pid`` — journals from several sessions merge into one timeline
        without overlapping.
        """
        pid = os.getpid()
        tid = self._tid
        events: list[dict] = [
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"flight:{self.session}"},
            }
        ]
        for entry in self.entries():
            kind = entry["kind"]
            if kind == "run":
                name = f"run x{entry['events']}"
            elif kind == "observe":
                name = f"observe:{entry['outcome']}"
            elif kind == "transition":
                name = f"drift:{entry['from']}->{entry['to']}"
            else:
                name = f"note:{entry['message']}"
            events.append(
                {
                    "name": name,
                    "ph": "i",
                    "s": "t",
                    "ts": entry["t"] * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": entry,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------

    def _default_path(self) -> str | None:
        directory = self.dump_dir or os.environ.get(FLIGHT_DIR_ENV)
        if not directory:
            return None
        safe = "".join(
            c if c.isalnum() or c in "-_." else "_" for c in self.session
        ) or "pythia"
        return os.path.join(directory, f"flight-{safe}.jsonl")

    def dump(self, path: str | os.PathLike | None = None) -> str | None:
        """Write the journal as JSONL; returns the path written.

        Without ``path``, writes into ``dump_dir`` /
        ``PYTHIA_FLIGHT_DIR`` (one file per session, overwritten — the
        journal always contains the most recent history); returns
        ``None`` when no destination is configured.
        """
        target = os.fspath(path) if path is not None else self._default_path()
        if target is None:
            return None
        with _DUMP_LOCK:
            parent = os.path.dirname(target)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(target, "w", encoding="utf-8") as fh:
                fh.write(self.to_jsonl())
        self.dumps += 1
        return target

    def auto_dump(self) -> str | None:
        """Dump if a destination is configured; silent no-op otherwise.

        Called by the drift monitor on every state transition.
        """
        return self.dump()


def active_recorders() -> list[FlightRecorder]:
    """Every live recorder in this process (weakly tracked)."""
    return list(_ACTIVE)


def dump_active(directory: str | os.PathLike | None = None) -> list[str]:
    """Dump every live, non-empty recorder; returns the paths written.

    ``directory`` overrides each recorder's own destination; without it,
    recorders lacking a configured destination are skipped.  Used by the
    test-session post-mortem hook and the CI artifact step.
    """
    paths: list[str] = []
    for rec in active_recorders():
        if not len(rec):
            continue
        if directory is not None:
            safe = "".join(
                c if c.isalnum() or c in "-_." else "_" for c in rec.session
            ) or "pythia"
            # the recorder id keeps same-named sessions from clobbering
            # each other in a shared post-mortem directory
            path = rec.dump(
                os.path.join(os.fspath(directory), f"flight-{safe}-{rec._tid}.jsonl")
            )
        else:
            path = rec.dump()
        if path is not None:
            paths.append(path)
    return paths


def _atexit_dump() -> None:
    """Flush every live recorder with a configured destination at exit.

    A crashing example or a short CLI run otherwise loses the journal
    tail that explains what went wrong.  Recorders without a dump
    directory (no ``dump_dir=``, no ``PYTHIA_FLIGHT_DIR``) are skipped
    by :func:`dump_active`, so the hook never invents output paths.
    """
    try:
        dump_active()
    except OSError:
        pass  # exit paths must never raise


atexit.register(_atexit_dump)
