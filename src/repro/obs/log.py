"""Structured logging: key=value or JSON lines, per-subsystem loggers.

Built on :mod:`logging` (handlers, levels, thread safety) but exposed
through a thin structured wrapper::

    from repro.obs import log
    logger = log.get_logger("server")
    logger.info("session_opened", session=sid, trace=path)

renders (kv format, the default)::

    2026-08-05T12:00:00 INFO pythia.server session_opened session=s1 trace=/tmp/bt.pythia

or, with ``fmt="json"``, one JSON object per line.  Configuration comes
from :func:`configure`, the ``PYTHIA_LOG`` environment variable
(``PYTHIA_LOG=debug`` or ``PYTHIA_LOG=json:debug``), or the CLI's
``--log-level`` switch.  Logging is **off** (WARNING, stderr) until one
of those asks for more, so the library stays silent by default.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import IO

__all__ = ["StructuredLogger", "configure", "configure_from_env", "get_logger"]

ROOT = "pythia"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
    "off": logging.CRITICAL + 10,
}


def _fmt_kv_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text or "=" in text or '"' in text:
        return json.dumps(text)
    return text


class _StructuredFormatter(logging.Formatter):
    """Renders records (message + ``fields`` dict) as kv or JSON lines."""

    def __init__(self, fmt_kind: str = "kv") -> None:
        super().__init__()
        self.fmt_kind = fmt_kind

    def format(self, record: logging.LogRecord) -> str:
        fields = getattr(record, "fields", {})
        ts = time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(record.created))
        if self.fmt_kind == "json":
            obj = {
                "ts": ts,
                "level": record.levelname,
                "logger": record.name,
                "event": record.getMessage(),
            }
            obj.update(fields)
            return json.dumps(obj, default=str)
        parts = [ts, record.levelname, record.name, record.getMessage()]
        parts.extend(f"{k}={_fmt_kv_value(v)}" for k, v in fields.items())
        return " ".join(parts)


class StructuredLogger:
    """Per-subsystem logger taking keyword fields on every call."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def _log(self, level: int, event: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"fields": fields})

    def debug(self, event: str, **fields) -> None:
        """Log at DEBUG."""
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        """Log at INFO."""
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        """Log at WARNING."""
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        """Log at ERROR."""
        self._log(logging.ERROR, event, fields)

    def is_enabled_for(self, level_name: str) -> bool:
        """True when records at ``level_name`` would be emitted."""
        return self._logger.isEnabledFor(_LEVELS[level_name.lower()])


def parse_spec(spec: str) -> tuple[int, str]:
    """Parse a ``PYTHIA_LOG`` spec into ``(level, fmt)``.

    ``"debug"`` -> (DEBUG, "kv"); ``"json:info"`` -> (INFO, "json").
    Unknown levels fall back to WARNING rather than raising: a typo in
    an environment variable must not kill the application.
    """
    spec = (spec or "").strip().lower()
    fmt = "kv"
    if ":" in spec:
        head, _, tail = spec.partition(":")
        if head in ("kv", "json"):
            fmt, spec = head, tail
        elif tail in ("kv", "json"):
            fmt, spec = tail, head
    return _LEVELS.get(spec, logging.WARNING), fmt


def configure(
    level: str | int = "warning",
    *,
    fmt: str = "kv",
    stream: IO[str] | None = None,
) -> None:
    """(Re)configure the ``pythia`` logging tree.

    Replaces any handler installed by a previous call, so tests and the
    CLI can reconfigure freely.  ``fmt`` is ``"kv"`` or ``"json"``.
    """
    if isinstance(level, str):
        level = _LEVELS.get(level.lower(), logging.WARNING)
    if fmt not in ("kv", "json"):
        raise ValueError(f"unknown log format {fmt!r} (want 'kv' or 'json')")
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_StructuredFormatter(fmt))
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False


def configure_from_env(default: str = "warning") -> None:
    """Configure from ``PYTHIA_LOG`` (level, or ``json:level``)."""
    spec = os.environ.get("PYTHIA_LOG")
    if spec is None:
        level, fmt = _LEVELS.get(default, logging.WARNING), "kv"
    else:
        level, fmt = parse_spec(spec)
    configure(level=level, fmt=fmt)


_configured = False


def get_logger(subsystem: str) -> StructuredLogger:
    """The structured logger for one subsystem (``pythia.<subsystem>``).

    The first call configures the tree from ``PYTHIA_LOG`` if nothing
    configured it yet.
    """
    global _configured
    if not _configured:
        _configured = True
        root = logging.getLogger(ROOT)
        if not root.handlers:
            configure_from_env()
    return StructuredLogger(logging.getLogger(f"{ROOT}.{subsystem}"))
