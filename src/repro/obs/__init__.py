"""repro.obs — the observability layer (metrics, logs, spans, accuracy).

Four independent, dependency-free pieces:

- :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges
  and fixed-bucket histograms, with Prometheus text exposition and a
  no-op null registry (``PYTHIA_METRICS=0``);
- :mod:`repro.obs.log` — structured key=value / JSON logging with
  per-subsystem loggers (``PYTHIA_LOG=debug``, ``PYTHIA_LOG=json:info``,
  or the CLI's ``--log-level``);
- :mod:`repro.obs.spans` — a ``with span("stage")`` API recording wall
  time per stage, exportable as Chrome trace JSON (``PYTHIA_SPANS=1``,
  ``pythia-trace spans``);
- :mod:`repro.obs.accuracy` — online scoring of every prediction the
  oracle makes against what the execution then actually does;
- :mod:`repro.obs.drift` — an online OK → DRIFTING → DIVERGED monitor
  comparing the tracker's drift signals against a reference baseline;
- :mod:`repro.obs.flight` — a bounded per-session flight recorder
  journaling recent events/predictions/outcomes (``PYTHIA_FLIGHT_DIR``).

The metric name catalogue lives in the README's "Observability" section.
"""

from repro.obs import log
from repro.obs.accuracy import AccuracyTracker, merge_reports
from repro.obs.drift import (
    DIVERGED,
    DRIFTING,
    OK,
    DriftBaseline,
    DriftMonitor,
    baseline_from_replay,
)
from repro.obs.flight import FlightRecorder, active_recorders, dump_active
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    metrics_enabled,
    render_prometheus,
    set_registry,
)
from repro.obs.spans import (
    Span,
    SpanRecorder,
    disable_spans,
    enable_spans,
    get_recorder,
    span,
    span_recording,
    spans_enabled,
)

__all__ = [
    "AccuracyTracker",
    "Counter",
    "DEFAULT_BUCKETS",
    "DIVERGED",
    "DRIFTING",
    "DriftBaseline",
    "DriftMonitor",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "NullRegistry",
    "OK",
    "Span",
    "SpanRecorder",
    "active_recorders",
    "baseline_from_replay",
    "disable_spans",
    "dump_active",
    "enable_spans",
    "get_recorder",
    "get_registry",
    "log",
    "merge_reports",
    "metrics_enabled",
    "render_prometheus",
    "set_registry",
    "span",
    "span_recording",
    "spans_enabled",
]
