"""repro.obs — the observability layer (metrics, logs, spans, accuracy).

Four independent, dependency-free pieces:

- :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges
  and fixed-bucket histograms, with Prometheus text exposition and a
  no-op null registry (``PYTHIA_METRICS=0``);
- :mod:`repro.obs.log` — structured key=value / JSON logging with
  per-subsystem loggers (``PYTHIA_LOG=debug``, ``PYTHIA_LOG=json:info``,
  or the CLI's ``--log-level``);
- :mod:`repro.obs.spans` — a ``with span("stage")`` API recording wall
  time per stage, exportable as Chrome trace JSON (``PYTHIA_SPANS=1``,
  ``pythia-trace spans``);
- :mod:`repro.obs.accuracy` — online scoring of every prediction the
  oracle makes against what the execution then actually does;
- :mod:`repro.obs.drift` — an online OK → DRIFTING → DIVERGED monitor
  comparing the tracker's drift signals against a reference baseline;
- :mod:`repro.obs.flight` — a bounded per-session flight recorder
  journaling recent events/predictions/outcomes (``PYTHIA_FLIGHT_DIR``);
- :mod:`repro.obs.sessions` — the daemon's bounded per-client-session
  telemetry table (LRU, evictions prune the labeled metric series);
- :mod:`repro.obs.analysis` — offline trace analysis: span dumps and
  flight journals merged into a columnar :class:`TraceTable` with
  filter/groupby/percentile and wire/queue/handler decomposition
  (``pythia-trace analyze``);
- :mod:`repro.obs.top` — the live ANSI ops console behind
  ``pythia-trace top``;
- :mod:`repro.obs.profiler` — a continuous sampling profiler over
  ``sys._current_frames()`` (``PYTHIA_PROFILE_HZ``), exporting
  collapsed stacks and self-contained flamegraph SVGs with per-op
  attribution (``pythia-trace profile``);
- :mod:`repro.obs.history` — a bounded ring of periodic registry
  snapshots with delta/rate/percentile queries and JSONL persistence
  (``PYTHIA_HISTORY*``), powering the ``history`` op;
- :mod:`repro.obs.process` — ``pythia_process_*`` CPU/RSS/fd/thread
  gauges from ``/proc`` with graceful off-Linux fallback;
- :mod:`repro.obs.httpd` — the zero-dependency HTTP observability
  endpoint (``/metrics``, ``/healthz``, ``/ready``, ``/profile``,
  ``/history.json``) behind ``pythia-trace serve --http``.

The metric name catalogue lives in the README's "Observability" section.
"""

from repro.obs import log
from repro.obs.accuracy import AccuracyTracker, merge_reports
from repro.obs.analysis import TraceTable
from repro.obs.drift import (
    DIVERGED,
    DRIFTING,
    OK,
    DriftBaseline,
    DriftMonitor,
    baseline_from_replay,
)
from repro.obs.flight import FlightRecorder, active_recorders, dump_active
from repro.obs.history import MetricsHistory, history_from_env
from repro.obs.httpd import ObservabilityHTTPServer
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    ParsedMetrics,
    get_registry,
    metrics_enabled,
    parse_prometheus_text,
    render_prometheus,
    set_registry,
)
from repro.obs.process import register_process_metrics
from repro.obs.profiler import (
    SamplingProfiler,
    disable_profiler,
    enable_profiler,
    get_profiler,
    profile_window,
    render_flamegraph,
    tag_op,
)
from repro.obs.sessions import SessionEntry, SessionStats
from repro.obs.spans import (
    Span,
    SpanRecorder,
    disable_spans,
    enable_spans,
    get_recorder,
    span,
    span_recording,
    spans_enabled,
)

__all__ = [
    "AccuracyTracker",
    "Counter",
    "DEFAULT_BUCKETS",
    "DIVERGED",
    "DRIFTING",
    "DriftBaseline",
    "DriftMonitor",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsHistory",
    "MetricsRegistry",
    "NullRegistry",
    "OK",
    "ObservabilityHTTPServer",
    "ParsedMetrics",
    "SamplingProfiler",
    "SessionEntry",
    "SessionStats",
    "Span",
    "SpanRecorder",
    "TraceTable",
    "active_recorders",
    "baseline_from_replay",
    "disable_profiler",
    "disable_spans",
    "dump_active",
    "enable_profiler",
    "enable_spans",
    "get_profiler",
    "get_recorder",
    "get_registry",
    "history_from_env",
    "log",
    "merge_reports",
    "metrics_enabled",
    "parse_prometheus_text",
    "profile_window",
    "register_process_metrics",
    "render_flamegraph",
    "render_prometheus",
    "set_registry",
    "span",
    "span_recording",
    "spans_enabled",
    "tag_op",
]
