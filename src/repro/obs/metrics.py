"""A dependency-free metrics registry (counters, gauges, histograms).

Design goals, in order:

1. **Cheap enough to leave on.**  Every instrument is a tiny object with
   a per-metric lock; an increment is one lock acquire and one int add.
   Hot paths that cannot afford even that (the per-event grammar append)
   batch locally and flush every few thousand events — see
   :class:`~repro.core.record.PythiaRecord`.
2. **Zero cost when off.**  :class:`NullRegistry` hands out no-op
   instruments; ``PYTHIA_METRICS=0`` (or :func:`set_registry` with a
   null registry) disables the whole subsystem without touching call
   sites.
3. **Scrapeable.**  :func:`render_prometheus` serialises a registry in
   the Prometheus text exposition format; the oracle daemon serves it
   through its ``metrics`` op (``pythia-trace metrics``).

Instruments are identified by ``(name, labels)``: requesting the same
pair twice returns the same object, so call sites may simply call
``registry.counter("pythia_record_events_total")`` and cache nothing.
Collector callbacks (:meth:`MetricsRegistry.register_collector`) let
long-lived objects publish gauges computed at scrape time instead of
paying per-update costs.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS_S",
    "ParsedMetrics",
    "get_registry",
    "set_registry",
    "merge_expositions",
    "metrics_enabled",
    "parse_prometheus_text",
    "quantile_from_buckets",
    "render_prometheus",
]

LabelsKey = tuple[tuple[str, str], ...]

#: generic magnitude buckets (counts, sizes): powers of two, 1 .. 16384
DEFAULT_BUCKETS: tuple[float, ...] = tuple(2**i for i in range(11)) + (4096, 16384)

#: latency buckets in seconds: 1 µs .. 10 s, roughly log-spaced (1 / 2.5 / 5 decades)
LATENCY_BUCKETS_S: tuple[float, ...] = (
    1e-6,
    2.5e-6,
    5e-6,
    1e-5,
    2.5e-5,
    5e-5,
    1e-4,
    2.5e-4,
    5e-4,
    1e-3,
    2.5e-3,
    5e-3,
    1e-2,
    2.5e-2,
    5e-2,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _labels_key(labels: Mapping[str, str] | None) -> LabelsKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "_lock", "_value")

    def __init__(self, name: str, labels: LabelsKey = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    def _set_total(self, value: int | float) -> None:
        """Overwrite the total (collector callbacks mirroring external
        counters; not part of the instrumentation API)."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> int | float:
        """Current total."""
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "_lock", "_value")

    def __init__(self, name: str, labels: LabelsKey = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        """Move the gauge by ``amount`` (either sign)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max and percentiles.

    Buckets follow Prometheus ``le`` semantics: a sample lands in the
    first bucket whose upper bound is **>= sample**; samples above the
    last bound land in the implicit ``+Inf`` overflow bucket.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "labels",
        "help",
        "bounds",
        "_lock",
        "_counts",
        "_sum",
        "_count",
        "_min",
        "_max",
    )

    def __init__(
        self,
        name: str,
        labels: LabelsKey = (),
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_batch(self, values) -> None:
        """Record many samples under one lock acquisition.

        Hot paths buffer raw samples and fold them in batches; this
        keeps the per-sample cost to a bisect and a few float ops
        instead of a call + lock round trip each.
        """
        if not values:
            return
        bounds = self.bounds
        with self._lock:
            counts = self._counts
            total = 0.0
            lo = self._min
            hi = self._max
            for v in values:
                counts[bisect_left(bounds, v)] += 1
                total += v
                if v < lo:
                    lo = v
                if v > hi:
                    hi = v
            self._sum += total
            self._count += len(values)
            self._min = lo
            self._max = hi

    @property
    def count(self) -> int:
        """Number of samples observed."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all samples."""
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear bucket interpolation.

        The estimate is clamped to the observed min/max, so degenerate
        single-bucket distributions do not report a bucket bound the
        data never reached.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            count = self._count
            if count == 0:
                return 0.0
            counts = list(self._counts)
            lo, hi = self._min, self._max
        target = q * count
        seen = 0.0
        for idx, c in enumerate(counts):
            if c == 0:
                continue
            if seen + c >= target:
                lower = self.bounds[idx - 1] if idx > 0 else 0.0
                upper = self.bounds[idx] if idx < len(self.bounds) else hi
                frac = (target - seen) / c
                est = lower + (upper - lower) * frac
                return min(max(est, lo), hi)
            seen += c
        return hi

    def snapshot(self) -> dict:
        """Sum/count/min/max plus p50/p95/p99 (all in sample units)."""
        with self._lock:
            count = self._count
            total = self._sum
            mn = self._min if count else 0.0
            mx = self._max if count else 0.0
        return {
            "count": count,
            "sum": total,
            "min": mn,
            "max": mx,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, count)``."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        cum = 0
        for bound, c in zip(self.bounds, counts):
            cum += c
            out.append((bound, cum))
        out.append((float("inf"), cum + counts[-1]))
        return out

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram.

        Both histograms must share the same bucket bounds (the benches
        merge per-client component digests this way).
        """
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        with other._lock:
            counts = list(other._counts)
            osum, ocount = other._sum, other._count
            omin, omax = other._min, other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += osum
            self._count += ocount
            if omin < self._min:
                self._min = omin
            if omax > self._max:
                self._max = omax


class _NullInstrument:
    """Absorbs every instrument method at near-zero cost."""

    kind = "null"
    __slots__ = ("name", "labels", "help", "bounds")

    def __init__(self, name: str = "", labels: LabelsKey = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0
    count = 0
    sum = 0.0

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {
            "count": 0,
            "sum": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def bucket_counts(self) -> list[tuple[float, int]]:
        return []


class MetricsRegistry:
    """Thread-safe home of every instrument in the process.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create by
    ``(name, labels)``; a name must keep one instrument kind.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, LabelsKey], object] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    def _get(self, cls, name: str, labels, help: str, **kwargs):
        key = (name, _labels_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, key[1], help=help, **kwargs)
                self._instruments[key] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {inst.kind}, "
                    f"requested {cls.kind}"
                )
            return inst

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None, *, help: str = ""
    ) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, labels, help)

    def gauge(
        self, name: str, labels: Mapping[str, str] | None = None, *, help: str = ""
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Get or create a histogram (``buckets`` applies on creation only)."""
        return self._get(Histogram, name, labels, help, buckets=buckets)

    def remove(self, name: str, labels: Mapping[str, str] | None = None) -> bool:
        """Drop the instrument registered under ``(name, labels)``.

        Returns True when something was removed.  Used to keep labeled
        families bounded: when the daemon's session table evicts an LRU
        entry, its ``pythia_session_*`` series are removed too, so the
        exposition's cardinality tracks the (bounded) table instead of
        every session id ever seen.
        """
        key = (name, _labels_key(labels))
        with self._lock:
            return self._instruments.pop(key, None) is not None

    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run before every :meth:`collect`.

        Collectors publish values computed at scrape time (active session
        counts, per-tracker stats) so hot paths pay nothing per update.
        """
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)

    def unregister_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Remove a collector registered earlier (idempotent)."""
        with self._lock:
            try:
                self._collectors.remove(fn)
            except ValueError:
                pass

    def collect(self) -> list:
        """Run collectors, then return every instrument (sorted by name)."""
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn(self)
        with self._lock:
            return sorted(self._instruments.values(), key=lambda i: (i.name, i.labels))

    def snapshot(self) -> dict:
        """Plain-dict view: ``name{labels}`` -> value or histogram summary."""
        out: dict[str, object] = {}
        for inst in self.collect():
            key = inst.name
            if inst.labels:
                key += "{" + ",".join(f"{k}={v}" for k, v in inst.labels) + "}"
            if isinstance(inst, Histogram):
                out[key] = inst.snapshot()
            else:
                out[key] = inst.value
        return out


class NullRegistry(MetricsRegistry):
    """Disabled registry: every instrument is a shared no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null = _NullInstrument()

    def _get(self, cls, name, labels, help, **kwargs):
        return self._null

    def collect(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {}


# ----------------------------------------------------------------------
# the process-wide registry
# ----------------------------------------------------------------------

_registry_lock = threading.Lock()
_registry: MetricsRegistry | None = None


def _default_registry() -> MetricsRegistry:
    if os.environ.get("PYTHIA_METRICS", "1").lower() in ("0", "off", "false", "no"):
        return NullRegistry()
    return MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use; honours
    ``PYTHIA_METRICS=0`` to start disabled)."""
    global _registry
    reg = _registry
    if reg is None:
        with _registry_lock:
            if _registry is None:
                _registry = _default_registry()
            reg = _registry
    return reg


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Replace the process registry (``None`` re-reads the environment).

    Returns the registry now in effect.  Tests and the overhead
    benchmark use this to swap a fresh or a null registry in.
    """
    global _registry
    with _registry_lock:
        _registry = registry if registry is not None else _default_registry()
        return _registry


def metrics_enabled() -> bool:
    """True when the process registry records anything."""
    return get_registry().enabled


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote and newline (in that order — the backslash
    pass must not re-escape the others' escapes)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP text escaping: backslash and newline (quotes stay verbatim)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_labels(labels: LabelsKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Serialise ``registry`` (default: the process one) as Prometheus text."""
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []
    seen_headers: set[str] = set()
    for inst in registry.collect():
        if inst.name not in seen_headers:
            seen_headers.add(inst.name)
            if inst.help:
                lines.append(f"# HELP {inst.name} {_escape_help(inst.help)}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
        if isinstance(inst, Histogram):
            for bound, cum in inst.bucket_counts():
                le = _fmt_labels(inst.labels, (("le", _fmt_value(bound)),))
                lines.append(f"{inst.name}_bucket{le} {cum}")
            lab = _fmt_labels(inst.labels)
            lines.append(f"{inst.name}_sum{lab} {_fmt_value(inst.sum)}")
            lines.append(f"{inst.name}_count{lab} {inst.count}")
        else:
            lab = _fmt_labels(inst.labels)
            lines.append(f"{inst.name}{lab} {_fmt_value(inst.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Prometheus text parsing (the inverse, for scrapers and the ops console)
# ----------------------------------------------------------------------


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    it = iter(range(len(value)))
    i = 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _parse_labels(body: str) -> dict[str, str]:
    """Parse the inside of ``{...}`` (quotes and escapes respected)."""
    labels: dict[str, str] = {}
    i = 0
    n = len(body)
    while i < n:
        eq = body.index("=", i)
        key = body[i:eq].strip().lstrip(",").strip()
        i = eq + 1
        if i >= n or body[i] != '"':
            raise ValueError(f"malformed label value near {body[i:]!r}")
        i += 1
        start = i
        raw: list[str] = []
        while i < n:
            c = body[i]
            if c == "\\":
                raw.append(body[start:i] + body[i : i + 2])
                i += 2
                start = i
                continue
            if c == '"':
                break
            i += 1
        else:
            raise ValueError("unterminated label value")
        raw.append(body[start:i])
        labels[key] = _unescape_label_value("".join(raw))
        i += 1  # closing quote
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


class ParsedMetrics:
    """A scraped Prometheus text page, queryable by name + labels.

    The inverse of :func:`render_prometheus` — ``pythia-trace top``
    scrapes the daemon's ``metrics`` op and reads throughputs and
    histogram quantiles back out of the text with this.
    """

    def __init__(self) -> None:
        #: family name -> {"type": str, "help": str}
        self.families: dict[str, dict[str, str]] = {}
        #: raw samples in page order: (sample_name, labels, value)
        self.samples: list[tuple[str, dict[str, str], float]] = []

    def value(self, name: str, labels: Mapping[str, str] | None = None) -> float | None:
        """The sample matching ``name`` and exactly ``labels``, or None."""
        want = dict(labels or {})
        for sname, slabels, val in self.samples:
            if sname == name and slabels == want:
                return val
        return None

    def buckets(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> list[tuple[float, float]]:
        """Cumulative ``(le, count)`` pairs of one histogram series.

        ``labels`` match the series' labels with ``le`` ignored; pairs
        come back sorted by bound, ``+Inf`` last.
        """
        want = dict(labels or {})
        out: list[tuple[float, float]] = []
        for sname, slabels, val in self.samples:
            if sname != name + "_bucket" or "le" not in slabels:
                continue
            rest = {k: v for k, v in slabels.items() if k != "le"}
            if rest != want:
                continue
            out.append((_parse_value(slabels["le"]), val))
        out.sort(key=lambda p: p[0])
        return out

    def quantile(
        self, name: str, q: float, labels: Mapping[str, str] | None = None
    ) -> float | None:
        """Estimate a quantile of one histogram series (or None if absent)."""
        pairs = self.buckets(name, labels)
        if not pairs or pairs[-1][1] == 0:
            return None
        return quantile_from_buckets(pairs, q)

    def series(self, name: str) -> list[tuple[dict[str, str], float]]:
        """Every ``(labels, value)`` sample of one family member name."""
        return [(lab, val) for sname, lab, val in self.samples if sname == name]


def quantile_from_buckets(pairs: Iterable[tuple[float, float]], q: float) -> float:
    """Quantile by linear interpolation over cumulative ``(le, count)``.

    Mirrors :meth:`Histogram.quantile` but works on scraped bucket
    pairs (no min/max clamp available — the top bound stands in).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    pairs = sorted(pairs, key=lambda p: p[0])
    if not pairs:
        return 0.0
    total = pairs[-1][1]
    if total == 0:
        return 0.0
    target = q * total
    prev_bound, prev_cum = 0.0, 0.0
    finite = [b for b, _ in pairs if b != float("inf")]
    top = finite[-1] if finite else 0.0
    for bound, cum in pairs:
        if cum >= target:
            if bound == float("inf"):
                return top
            span = cum - prev_cum
            frac = (target - prev_cum) / span if span else 1.0
            return prev_bound + (bound - prev_bound) * frac
        prev_bound, prev_cum = (0.0 if bound == float("inf") else bound), cum
    return top


def parse_prometheus_text(text: str) -> ParsedMetrics:
    """Parse a Prometheus text exposition page into :class:`ParsedMetrics`.

    Understands the subset :func:`render_prometheus` emits (``# HELP`` /
    ``# TYPE`` comments, escaped label values, ``+Inf``).  Unknown
    comment lines and malformed sample lines are skipped — the ops
    console polls whatever daemon it is pointed at, so one stray line
    must not take the whole frame down.
    """
    parsed = ParsedMetrics()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                fam = parsed.families.setdefault(parts[2], {"type": "", "help": ""})
                fam["type" if parts[1] == "TYPE" else "help"] = (
                    parts[3] if len(parts) > 3 else ""
                )
            continue
        try:
            if "{" in line:
                name, rest = line.split("{", 1)
                body, _, tail = rest.rpartition("}")
                labels = _parse_labels(body)
                value_text = tail.strip().split()[0]
            else:
                name, value_text = line.split()[:2]
                labels = {}
            value = _parse_value(value_text)
        except (ValueError, IndexError):
            continue
        parsed.samples.append((name.strip(), labels, value))
    return parsed


def merge_expositions(
    pages: Mapping[str, str], *, label: str = "worker", own: str | None = None
) -> str:
    """Merge per-process Prometheus pages into one labeled exposition.

    ``pages`` maps an instance key (e.g. a worker id) to that
    instance's exposition text; every sample comes back with a
    ``label="<key>"`` label injected, so N workers' identically-named
    series coexist in one scrape (``pythia_server_requests_total{
    worker="0"}`` next to ``worker="1"``).  ``# HELP`` / ``# TYPE``
    headers are emitted once per family (first page to define them
    wins); histogram ``_bucket`` / ``_sum`` / ``_count`` samples stay
    grouped under their family.  A sample that already carries the
    label is overridden — the merger is the authority on instance
    identity.

    ``own`` is an optional extra page merged *without* label injection:
    the merging process's own metrics (the supervisor's
    ``pythia_worker_*`` gauges, its process stats).  Running it through
    the merge — instead of concatenating text — keeps a family that
    exists on both sides (``pythia_process_cpu_seconds_total`` in every
    worker *and* the supervisor) announced by exactly one ``# HELP`` /
    ``# TYPE`` pair, which strict scrapers require.
    """
    families: dict[str, dict[str, str]] = {}
    by_family: dict[str, list[tuple[str, dict[str, str], float]]] = {}

    def _ingest(parsed: ParsedMetrics, inject: str | None) -> None:
        for fam, meta in parsed.families.items():
            cur = families.setdefault(fam, {"type": "", "help": ""})
            for part in ("type", "help"):
                if not cur[part]:
                    cur[part] = meta[part]
        for sname, labels, value in parsed.samples:
            fam = sname
            for suffix in ("_bucket", "_sum", "_count"):
                base = sname[: -len(suffix)]
                if sname.endswith(suffix) and base in parsed.families:
                    fam = base
                    break
            labeled = dict(labels)
            if inject is not None:
                labeled[label] = inject
            by_family.setdefault(fam, []).append((sname, labeled, value))

    for key in sorted(pages, key=str):
        _ingest(parse_prometheus_text(pages[key]), str(key))
    if own:
        _ingest(parse_prometheus_text(own), None)
    lines: list[str] = []
    for fam in sorted(by_family):
        meta = families.get(fam)
        if meta is not None:
            # headers were parsed from exposition text: already escaped
            if meta["help"]:
                lines.append(f"# HELP {fam} {meta['help']}")
            if meta["type"]:
                lines.append(f"# TYPE {fam} {meta['type']}")
        for sname, labels, value in by_family[fam]:
            lines.append(
                f"{sname}{_fmt_labels(_labels_key(labels))} {_fmt_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
