"""Runtime spans: wall-time per named stage, exportable as Chrome traces.

Usage::

    from repro.obs import span, span_recording
    with span_recording() as rec:          # or enable_spans() globally
        with span("record.compress", app="bt"):
            ...work...
    rec.to_chrome_trace()                  # load in chrome://tracing / Perfetto

Spans nest naturally (the context manager tracks per-thread depth) and
cost nothing when recording is disabled — :func:`span` returns a shared
no-op context manager, so leaving ``with span(...)`` on a hot stage is
free until someone turns recording on (``PYTHIA_SPANS=1``, the CLI's
``pythia-trace spans``, or :func:`enable_spans`).

The export is the Chrome trace-event format: complete events (``ph:
"X"``) with microsecond timestamps, one row per thread.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanRecorder",
    "SPANS_DUMP_ENV",
    "enable_spans",
    "disable_spans",
    "get_recorder",
    "span",
    "span_recording",
    "spans_enabled",
]

#: environment variable naming a Chrome-trace path the process recorder
#: is dumped to at interpreter exit (the atexit flush)
SPANS_DUMP_ENV = "PYTHIA_SPANS_DUMP"


@dataclass(slots=True)
class Span:
    """One finished span (times from :func:`time.perf_counter`)."""

    name: str
    start: float
    duration: float
    thread_id: int
    thread_name: str
    depth: int
    attrs: dict = field(default_factory=dict)
    #: recorded at span creation, not export time, so spans collected in
    #: a forked worker keep their true process id
    pid: int = 0


class SpanRecorder:
    """Thread-safe collector of finished spans."""

    def __init__(self, *, max_spans: int = 100_000) -> None:
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._dropped = 0
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- recording ------------------------------------------------------

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @contextmanager
    def record(self, name: str, **attrs):
        """Time one stage; records a :class:`Span` on exit (even on error)."""
        depth = self._depth()
        self._local.depth = depth + 1
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            duration = time.perf_counter() - t0
            self._local.depth = depth
            thread = threading.current_thread()
            sp = Span(
                name=name,
                start=t0 - self._epoch,
                duration=duration,
                thread_id=thread.ident or 0,
                thread_name=thread.name,
                depth=depth,
                attrs=attrs,
                pid=os.getpid(),
            )
            with self._lock:
                if len(self._spans) < self.max_spans:
                    self._spans.append(sp)
                else:
                    self._dropped += 1

    def emit(
        self,
        name: str,
        t0: float,
        duration: float,
        *,
        depth: int = 0,
        **attrs,
    ) -> None:
        """Record an already-finished span.

        ``t0`` is the :func:`time.perf_counter` value at which the span
        began.  Request tracing uses this instead of :meth:`record`:
        a request span's attributes (the server-side queue/handler
        split) are only known once the reply has been decoded, after
        the interval being described has already ended.
        """
        thread = threading.current_thread()
        sp = Span(
            name=name,
            start=t0 - self._epoch,
            duration=duration,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            depth=depth,
            attrs=attrs,
            pid=os.getpid(),
        )
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(sp)
            else:
                self._dropped += 1

    # -- reading --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def dropped(self) -> int:
        """Spans discarded after hitting ``max_spans``."""
        with self._lock:
            return self._dropped

    def spans(self) -> list[Span]:
        """Copy of the recorded spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Forget every recorded span."""
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    def totals(self) -> dict[str, dict]:
        """Per-name aggregate: count, total and max seconds."""
        out: dict[str, dict] = {}
        for sp in self.spans():
            agg = out.setdefault(sp.name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
            agg["count"] += 1
            agg["total_s"] += sp.duration
            if sp.duration > agg["max_s"]:
                agg["max_s"] = sp.duration
        return out

    # -- export ---------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON object (``chrome://tracing`` / Perfetto).

        Every span carries its recording ``pid`` and its thread's real
        ``tid`` (plus a ``thread_name`` metadata event per thread), so a
        multi-threaded dump renders one row per thread instead of
        overlapping on a single track.
        """
        fallback_pid = os.getpid()
        events = []
        threads: dict[tuple[int, int], str] = {}
        for sp in self.spans():
            pid = sp.pid or fallback_pid
            threads.setdefault((pid, sp.thread_id), sp.thread_name)
            events.append(
                {
                    "name": sp.name,
                    "ph": "X",
                    "ts": round(sp.start * 1e6, 3),
                    "dur": round(sp.duration * 1e6, 3),
                    "pid": pid,
                    "tid": sp.thread_id,
                    "args": dict(sp.attrs, depth=sp.depth),
                }
            )
        events.sort(key=lambda e: e["ts"])
        meta = [
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
            for (pid, tid), name in sorted(threads.items())
        ]
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def dump(self, path: str | os.PathLike) -> None:
        """Write :meth:`to_chrome_trace` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)


# ----------------------------------------------------------------------
# the process-wide recorder
# ----------------------------------------------------------------------

_lock = threading.Lock()
_recorder: SpanRecorder | None = None
if os.environ.get("PYTHIA_SPANS", "").lower() in ("1", "on", "true", "yes"):
    _recorder = SpanRecorder()


class _NullSpan:
    """Shared no-op context manager handed out while recording is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


def spans_enabled() -> bool:
    """True while a process-wide recorder is installed."""
    return _recorder is not None


def get_recorder() -> SpanRecorder | None:
    """The process-wide recorder, or ``None`` when disabled."""
    return _recorder


def enable_spans(recorder: SpanRecorder | None = None) -> SpanRecorder:
    """Install (and return) a process-wide span recorder."""
    global _recorder
    with _lock:
        if recorder is not None:
            _recorder = recorder
        elif _recorder is None:
            _recorder = SpanRecorder()
        return _recorder


def disable_spans() -> None:
    """Remove the process-wide recorder; :func:`span` becomes free again."""
    global _recorder
    with _lock:
        _recorder = None


def span(name: str, **attrs):
    """Context manager timing one stage into the process recorder.

    A no-op (one attribute load, one identity check) while recording is
    disabled — safe to leave on hot paths.
    """
    rec = _recorder
    if rec is None:
        return _NULL_SPAN
    return rec.record(name, **attrs)


def _atexit_dump() -> None:
    """Flush the process recorder at interpreter exit.

    Short CLI runs and crashing examples otherwise lose their tail of
    telemetry — the recorder dies with the process.  A destination must
    be configured (``PYTHIA_SPANS_DUMP=path``); without one this is a
    no-op, so merely enabling spans never writes files as a side effect.
    """
    rec = _recorder
    target = os.environ.get(SPANS_DUMP_ENV)
    if rec is None or not target or not len(rec):
        return
    try:
        parent = os.path.dirname(target)
        if parent:
            os.makedirs(parent, exist_ok=True)
        rec.dump(target)
    except OSError:
        pass  # exit paths must never raise


atexit.register(_atexit_dump)


@contextmanager
def span_recording(recorder: SpanRecorder | None = None):
    """Enable span recording for one block; restores the prior state."""
    global _recorder
    with _lock:
        prev = _recorder
        rec = recorder if recorder is not None else SpanRecorder()
        _recorder = rec
    try:
        yield rec
    finally:
        with _lock:
            _recorder = prev
