"""Metrics history: a bounded ring of registry snapshots, with rates.

One Prometheus scrape is a point; trends need a window.  A
:class:`MetricsHistory` keeps the last ``capacity`` periodic snapshots
of a registry (1 Hz × 600 entries ≈ 10 minutes by default) and computes
what single snapshots cannot:

- :meth:`rate` — per-second increase of a counter over a window
  (req/s, events/s), clamped at zero across process restarts;
- :meth:`delta` — absolute increase over a window;
- :meth:`percentiles` — distribution of a *gauge's* sampled values
  (e.g. where has ``pythia_sessions_active`` been for 5 minutes);
- :meth:`series` — the raw ``(t, value)`` points, powering the
  sparklines and req/s columns in ``pythia-trace top`` and the
  ``/history.json`` endpoint.

Snapshots flatten each instrument to scalar samples keyed exactly like
the exposition (``name{k="v"}``); histograms contribute their ``_sum``
and ``_count`` series so rates over them work too.  The ring also
ingests *scraped* pages (:meth:`record_page`) so a client-side console
can keep history for a remote daemon, and persists as JSONL
(:meth:`dump` / :meth:`load`) for post-mortem joins with
flight-recorder dumps.

Environment: ``PYTHIA_HISTORY=0`` disables the daemon's ring,
``PYTHIA_HISTORY_INTERVAL`` / ``PYTHIA_HISTORY_CAP`` tune it, and
``PYTHIA_HISTORY_DIR`` names a directory the daemon dumps the ring
into on shutdown.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from collections.abc import Iterable, Mapping

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_prometheus_text,
)

__all__ = [
    "HISTORY_CAP_ENV",
    "HISTORY_DIR_ENV",
    "HISTORY_ENV",
    "HISTORY_INTERVAL_ENV",
    "MetricsHistory",
    "history_from_env",
    "sample_key",
]

HISTORY_ENV = "PYTHIA_HISTORY"
HISTORY_INTERVAL_ENV = "PYTHIA_HISTORY_INTERVAL"
HISTORY_CAP_ENV = "PYTHIA_HISTORY_CAP"
HISTORY_DIR_ENV = "PYTHIA_HISTORY_DIR"

DEFAULT_INTERVAL = 1.0
DEFAULT_CAPACITY = 600

#: counters the ``history`` op reports rates for by default — the ones
#: an operator actually watches (request, event and prediction flow).
DEFAULT_RATE_KEYS = (
    "pythia_server_requests_total",
    "pythia_server_events_observed",
    "pythia_server_predictions_served",
    "pythia_process_cpu_seconds_total",
)


def sample_key(name: str, labels: Mapping[str, str] | None = None) -> str:
    """Flatten ``(name, labels)`` to the ring's sample key.

    Matches the exposition spelling (sorted labels, quoted values) so
    keys line up whether a snapshot came from a live registry or a
    scraped page: ``pythia_session_requests_total{sid="a"}``.
    """
    if not labels:
        return name
    body = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return name + "{" + body + "}"


def _flatten_registry(registry: MetricsRegistry) -> dict[str, float]:
    values: dict[str, float] = {}
    for inst in registry.collect():
        labels = dict(inst.labels)
        if isinstance(inst, Histogram):
            values[sample_key(inst.name + "_sum", labels)] = float(inst.sum)
            values[sample_key(inst.name + "_count", labels)] = float(inst.count)
        else:
            values[sample_key(inst.name, labels)] = float(inst.value)
    return values


def _flatten_page(text: str) -> dict[str, float]:
    values: dict[str, float] = {}
    for sname, labels, value in parse_prometheus_text(text).samples:
        if "le" in labels and sname.endswith("_bucket"):
            continue  # buckets are cumulative noise at ring granularity
        values[sample_key(sname, labels)] = float(value)
    return values


class MetricsHistory:
    """Bounded ring of ``(t, {sample_key: value})`` snapshots.

    Internally every entry carries *two* clocks: ``time.monotonic()``
    drives all windowing, rates and spans (an NTP step or a backwards
    wall-clock jump must not corrupt ``rate()``/``delta()`` windows or
    ``top`` sparklines), while ``time.time()`` is kept purely for
    display and JSONL persistence — :meth:`entries` and :meth:`series`
    expose the wall timestamp, exactly as before.  Tests that pass an
    explicit ``now`` pin both clocks to that value.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        capacity: int = DEFAULT_CAPACITY,
        interval: float = DEFAULT_INTERVAL,
    ) -> None:
        if capacity < 2:
            raise ValueError("capacity must be >= 2 (rates need two points)")
        self.registry = registry
        self.capacity = capacity
        self.interval = float(interval)
        self._lock = threading.Lock()
        # (t_monotonic, t_wall, values) — mono windows, wall displays
        self._ring: deque[tuple[float, float, dict[str, float]]] = deque(
            maxlen=capacity
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- recording ------------------------------------------------------

    def record(self, now: float | None = None) -> None:
        """Snapshot the registry into the ring (``now`` defaults to
        ``time.time()``; tests pass explicit timestamps)."""
        registry = self.registry if self.registry is not None else get_registry()
        self.record_values(_flatten_registry(registry), now=now)

    def record_page(self, text: str, now: float | None = None) -> None:
        """Snapshot a scraped Prometheus page into the ring."""
        self.record_values(_flatten_page(text), now=now)

    def record_values(self, values: dict[str, float], now: float | None = None) -> None:
        if now is None:
            t_mono, t_wall = time.monotonic(), time.time()
        else:
            t_mono = t_wall = now
        with self._lock:
            self._ring.append((t_mono, t_wall, values))

    # -- background collection ------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MetricsHistory":
        """Start periodic :meth:`record` on a daemon thread."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="pythia-history", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.record()
            except Exception:  # a bad collector must not kill the ring
                pass

    # -- queries --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def _window(
        self, window_s: float | None
    ) -> list[tuple[float, float, dict[str, float]]]:
        """Ring triples, oldest first, clipped on the *monotonic* clock."""
        with self._lock:
            items = list(self._ring)
        if window_s is not None and items:
            cutoff = items[-1][0] - window_s
            items = [e for e in items if e[0] >= cutoff]
        return items

    def entries(self, window_s: float | None = None) -> list[tuple[float, dict]]:
        """Ring contents as ``(t_wall, values)``, oldest first, optionally
        clipped to a window (windowing runs on the monotonic clock)."""
        return [(t_wall, v) for _, t_wall, v in self._window(window_s)]

    def keys(self) -> list[str]:
        """Every sample key present in the newest snapshot."""
        with self._lock:
            if not self._ring:
                return []
            return sorted(self._ring[-1][2])

    def series(
        self, key: str, window_s: float | None = None
    ) -> list[tuple[float, float]]:
        """``(t_wall, value)`` points for one sample key (absent points
        skipped) — wall timestamps, for display only."""
        return [
            (t_wall, values[key])
            for _, t_wall, values in self._window(window_s)
            if key in values
        ]

    def _points(
        self, key: str, window_s: float | None = None
    ) -> list[tuple[float, float]]:
        """``(t_monotonic, value)`` points — the time base for math."""
        return [
            (t_mono, values[key])
            for t_mono, _, values in self._window(window_s)
            if key in values
        ]

    def delta(self, key: str, window_s: float | None = None) -> float | None:
        """Increase of ``key`` over the window (last - first), or None."""
        pts = self._points(key, window_s)
        if len(pts) < 2:
            return None
        return pts[-1][1] - pts[0][1]

    def rate(self, key: str, window_s: float | None = None) -> float | None:
        """Per-second rate of a counter over the window, or None.

        A counter reset (process restart) shows as a negative delta;
        like PromQL's ``rate()``, the drop is clamped by summing only
        the positive per-step increases.  Spans come from the monotonic
        clock, so a wall-clock step cannot produce a negative or
        inflated span.
        """
        pts = self._points(key, window_s)
        if len(pts) < 2:
            return None
        span = pts[-1][0] - pts[0][0]
        if span <= 0:
            return None
        increase = 0.0
        for (_, prev), (_, cur) in zip(pts, pts[1:]):
            if cur > prev:
                increase += cur - prev
        return increase / span

    def percentiles(
        self,
        key: str,
        qs: Iterable[float] = (0.5, 0.95, 0.99),
        window_s: float | None = None,
    ) -> dict[float, float] | None:
        """Percentiles of a sampled value (gauges) over the window."""
        values = sorted(v for _, v in self._points(key, window_s))
        if not values:
            return None
        out: dict[float, float] = {}
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError("quantile must be in [0, 1]")
            idx = min(len(values) - 1, int(q * (len(values) - 1) + 0.5))
            out[q] = values[idx]
        return out

    # -- views / persistence --------------------------------------------

    def view(
        self,
        keys: Iterable[str] | None = None,
        window_s: float | None = None,
        *,
        max_points: int = 120,
    ) -> dict:
        """The ``history`` op / ``/history.json`` payload.

        Series are decimated to ``max_points`` (newest kept) so a
        10-minute ring doesn't ship 600 points per key over the wire.
        """
        wanted = list(keys) if keys is not None else [
            k for k in DEFAULT_RATE_KEYS if self.series(k, window_s)
        ]
        series: dict[str, list[list[float]]] = {}
        rates: dict[str, float | None] = {}
        for key in wanted:
            pts = self.series(key, window_s)
            if len(pts) > max_points:
                pts = pts[-max_points:]
            series[key] = [[round(t, 3), v] for t, v in pts]
            rates[key] = self.rate(key, window_s)
        entries = self._window(window_s)
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "entries": len(entries),
            "span_seconds": (  # monotonic span: NTP-step proof
                round(entries[-1][0] - entries[0][0], 3) if len(entries) > 1 else 0.0
            ),
            "series": series,
            "rates": rates,
        }

    def to_jsonl(self) -> str:
        """One ``{"t": ..., "v": {...}}`` JSON line per ring entry."""
        return "".join(
            json.dumps({"t": t, "v": values}, sort_keys=True) + "\n"
            for t, values in self.entries()
        )

    def dump(self, path: str) -> int:
        """Write the ring as JSONL; returns the entry count."""
        entries = self.entries()
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            for t, values in entries:
                fh.write(json.dumps({"t": t, "v": values}, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return len(entries)

    @classmethod
    def load(cls, path: str, **kwargs) -> "MetricsHistory":
        """Rebuild a ring from a :meth:`dump` file (post-mortem analysis)."""
        hist = cls(registry=None, **kwargs)
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                hist.record_values(dict(obj["v"]), now=float(obj["t"]))
        return hist


def history_from_env(
    registry: MetricsRegistry | None = None,
) -> MetricsHistory | None:
    """Build (not start) a ring per the ``PYTHIA_HISTORY*`` environment.

    Returns None when ``PYTHIA_HISTORY=0`` turns history off.
    """
    if os.environ.get(HISTORY_ENV, "1").lower() in ("0", "off", "false", "no"):
        return None
    try:
        interval = float(os.environ.get(HISTORY_INTERVAL_ENV, DEFAULT_INTERVAL))
    except ValueError:
        interval = DEFAULT_INTERVAL
    try:
        capacity = int(os.environ.get(HISTORY_CAP_ENV, DEFAULT_CAPACITY))
    except ValueError:
        capacity = DEFAULT_CAPACITY
    return MetricsHistory(
        registry, capacity=max(2, capacity), interval=max(0.05, interval)
    )
