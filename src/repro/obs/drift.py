"""Online drift detection: is the live execution still the reference one?

PYTHIA's tolerance machinery (§II-B2, §III-E) is deliberately silent:
an unexpected event reweights candidates, an unknown event loses the
tracker, a restart re-acquires it — and the consumer only notices once
hit-rate has already cratered.  A :class:`DriftMonitor` watches the
*signals* of that machinery online and raises a typed alarm instead:

- **EWMA hit-rate** of scored predictions,
- **unseen-event ratio** (events absent from the reference grammar),
- **resync rate** (restarts + lost→resync transitions per event),
- **candidate-set entropy** (how ambiguous the tracker's position is),

each compared against a :class:`DriftBaseline` — either the optimistic
default (perfect oracle) or one captured from a reference replay with
:func:`baseline_from_replay`.  A small state machine classifies the gap
(``OK → DRIFTING → DIVERGED``, with hysteresis on the way back down),
emitting ``pythia_drift_*`` gauges, a structured log event, a journal
entry + auto-dump on the session's flight recorder, and registered
callbacks — the OpenMP thread-count policy uses one to fall back to
default thread counts while DIVERGED.

Cost model: the monitor is *not* fed per event.  The tracker's hot path
already counts observations toward a flush threshold; attaching a
monitor lowers that threshold to ``stride`` (default 32) and
:meth:`DriftMonitor.update` reads counter **deltas** at each stride
boundary — the matched fast path pays zero additional work per event.
While the state is OK and a window saw no anomalies the tracker
stretches the feed to every 4th boundary; any unexpected restart or
unknown event snaps it back, so a switch is still classified within
two stride windows (see ``bench_obs_overhead.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs import metrics as obs_metrics
from repro.obs.log import get_logger

__all__ = [
    "OK",
    "DRIFTING",
    "DIVERGED",
    "STATE_CODES",
    "DriftBaseline",
    "DriftMonitor",
    "baseline_from_replay",
]

OK = "ok"
DRIFTING = "drifting"
DIVERGED = "diverged"

#: gauge encoding of the states (and their severity ordering)
STATE_CODES = {OK: 0, DRIFTING: 1, DIVERGED: 2}
_STATE_NAMES = (OK, DRIFTING, DIVERGED)

#: state transitions remembered by :meth:`DriftMonitor.report`
MAX_TRANSITIONS = 64

_log = get_logger("drift")


@dataclass(frozen=True, slots=True)
class DriftBaseline:
    """Expected steady-state signal levels, from the reference replay.

    The default is the optimistic baseline (perfect oracle): right for
    regular applications, pessimistic for irregular ones — capture a
    real one with :func:`baseline_from_replay` when the reference
    execution itself predicts imperfectly (Quicksilver-style grammars).
    """

    hit_rate: float = 1.0
    unseen_ratio: float = 0.0
    resync_rate: float = 0.0
    entropy: float = 0.0

    def to_obj(self) -> dict:
        return {
            "hit_rate": self.hit_rate,
            "unseen_ratio": self.unseen_ratio,
            "resync_rate": self.resync_rate,
            "entropy": self.entropy,
        }

    @staticmethod
    def from_obj(obj: dict) -> "DriftBaseline":
        return DriftBaseline(
            hit_rate=obj.get("hit_rate", 1.0),
            unseen_ratio=obj.get("unseen_ratio", 0.0),
            resync_rate=obj.get("resync_rate", 0.0),
            entropy=obj.get("entropy", 0.0),
        )


class DriftMonitor:
    """OK → DRIFTING → DIVERGED alarm over the tracker's drift signals.

    Attach with :meth:`~repro.core.predict.PythiaPredict.attach_drift`;
    one monitor may be shared by several trackers (per-thread sessions
    of one process) — deltas are kept per tracker, the alarm state is
    shared.  Thresholds are ``(drifting, diverged)`` pairs measured as
    the gap from the baseline; recovery requires ``recover_after``
    consecutive calmer classifications (hysteresis against flapping).
    """

    __slots__ = (
        "baseline",
        "stride",
        "alpha",
        "hit_drop",
        "unseen",
        "resync",
        "entropy_rise",
        "recover_after",
        "gauge_every",
        "flight",
        "state",
        "events",
        "updates",
        "hit_ewma",
        "unseen_ewma",
        "resync_ewma",
        "entropy_ewma",
        "transitions",
        "callbacks",
        "_calm_streak",
        "_last_trk",
        "_last_prev",
        "_prev_map",
        "_floor_hit_1",
        "_floor_hit_2",
        "_ceil_unseen_1",
        "_ceil_unseen_2",
        "_ceil_resync_1",
        "_ceil_resync_2",
        "_ceil_entropy_1",
        "_ceil_entropy_2",
    )

    def __init__(
        self,
        baseline: DriftBaseline | None = None,
        *,
        stride: int = 32,
        alpha: float = 0.4,
        hit_drop: tuple[float, float] = (0.15, 0.40),
        unseen: tuple[float, float] = (0.10, 0.35),
        resync: tuple[float, float] = (0.10, 0.35),
        entropy_rise: tuple[float, float] = (1.0, 3.0),
        recover_after: int = 3,
        gauge_every: int = 8,
        flight=None,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.baseline = baseline if baseline is not None else DriftBaseline()
        self.stride = stride
        self.alpha = alpha
        self.hit_drop = hit_drop
        self.unseen = unseen
        self.resync = resync
        self.entropy_rise = entropy_rise
        self.recover_after = recover_after
        self.gauge_every = gauge_every
        #: fallback flight recorder for transition journaling when the
        #: triggering tracker has none attached
        self.flight = flight
        self.state = OK
        self.events = 0
        self.updates = 0
        self.hit_ewma = self.baseline.hit_rate
        self.unseen_ewma = self.baseline.unseen_ratio
        self.resync_ewma = self.baseline.resync_rate
        self.entropy_ewma = self.baseline.entropy
        self.transitions: list[dict] = []
        self.callbacks: list = []
        self._calm_streak = 0
        # per-tracker counter snapshots: a one-slot fast path for the
        # dominant single-tracker case, a dict for shared monitors
        self._last_trk = None
        self._last_prev = (0, 0, 0, 0, 0)
        self._prev_map: dict = {}
        # thresholds as absolute signal levels (baseline is fixed at
        # construction), so the steady-state update is four comparisons
        base = self.baseline
        self._floor_hit_1 = base.hit_rate - hit_drop[0]
        self._floor_hit_2 = base.hit_rate - hit_drop[1]
        self._ceil_unseen_1 = base.unseen_ratio + unseen[0]
        self._ceil_unseen_2 = base.unseen_ratio + unseen[1]
        self._ceil_resync_1 = base.resync_rate + resync[0]
        self._ceil_resync_2 = base.resync_rate + resync[1]
        self._ceil_entropy_1 = base.entropy + entropy_rise[0]
        self._ceil_entropy_2 = base.entropy + entropy_rise[1]

    # ------------------------------------------------------------------

    def on_transition(self, callback):
        """Register ``callback(old_state, new_state, snapshot_dict)``.

        Called on every state transition; exceptions are logged and
        swallowed (an observer must not take the tracker down).
        Returns the callback, so it can be used as a decorator.
        """
        self.callbacks.append(callback)
        return callback

    def update(self, tracker) -> str:
        """Consume the counter delta since this tracker's last update.

        Called by the tracker every ``stride`` observations; safe to
        call at any time (a no-op when nothing was observed since).
        Returns the (possibly new) state.
        """
        observed = tracker.observed
        if tracker is self._last_trk:
            prev = self._last_prev
        else:
            if self._last_trk is not None:
                self._prev_map[self._last_trk] = self._last_prev
            self._last_trk = tracker
            prev = self._prev_map.get(tracker, (0, 0, 0, 0, 0))
        delta = observed - prev[0]
        if delta <= 0:
            return self.state
        acc = tracker.accuracy
        hits = acc.hits
        misses = acc.misses
        unknown = tracker.unknown
        resyncs = acc.resyncs + acc.unexpected_restarts
        self._last_prev = (observed, hits, misses, unknown, resyncs)
        alpha = self.alpha
        d_hits = hits - prev[1]
        d_scored = d_hits + (misses - prev[2])
        hit_ewma = self.hit_ewma
        if d_scored:
            hit_ewma += alpha * (d_hits / d_scored - hit_ewma)
            self.hit_ewma = hit_ewma
        ratio = (unknown - prev[3]) / delta
        unseen_ewma = self.unseen_ewma
        unseen_ewma += alpha * ((ratio if ratio < 1.0 else 1.0) - unseen_ewma)
        self.unseen_ewma = unseen_ewma
        ratio = (resyncs - prev[4]) / delta
        resync_ewma = self.resync_ewma
        resync_ewma += alpha * ((ratio if ratio < 1.0 else 1.0) - resync_ewma)
        self.resync_ewma = resync_ewma
        cands = tracker.candidates
        if len(cands) > 1:
            entropy = 0.0
            for w in cands.values():
                if w > 0.0:
                    entropy -= w * math.log2(w)
        else:
            entropy = 0.0
        entropy_ewma = self.entropy_ewma
        entropy_ewma += alpha * (entropy - entropy_ewma)
        self.entropy_ewma = entropy_ewma
        self.events += delta
        self.updates += 1
        if (
            hit_ewma > self._floor_hit_1
            and unseen_ewma < self._ceil_unseen_1
            and resync_ewma < self._ceil_resync_1
            and entropy_ewma < self._ceil_entropy_1
        ):
            # clearly calm: skip the classify/advance calls entirely when
            # already OK — this is every tick of a healthy session
            if self.state is OK:
                self._calm_streak = 0
            else:
                self._advance(0, tracker)
        else:
            self._advance(self._classify(), tracker)
        if self.updates % self.gauge_every == 0:
            self._publish()
        return self.state

    # ------------------------------------------------------------------

    def _classify(self) -> int:
        if (
            self.hit_ewma <= self._floor_hit_2
            or self.unseen_ewma >= self._ceil_unseen_2
            or self.resync_ewma >= self._ceil_resync_2
            or self.entropy_ewma >= self._ceil_entropy_2
        ):
            return 2
        if (
            self.hit_ewma <= self._floor_hit_1
            or self.unseen_ewma >= self._ceil_unseen_1
            or self.resync_ewma >= self._ceil_resync_1
            or self.entropy_ewma >= self._ceil_entropy_1
        ):
            return 1
        return 0

    def _advance(self, level: int, tracker) -> None:
        code = STATE_CODES[self.state]
        if level > code:
            # escalate immediately: an alarm must not wait out hysteresis
            self._calm_streak = 0
            self._transition(_STATE_NAMES[level], tracker)
        elif level < code:
            self._calm_streak += 1
            if self._calm_streak >= self.recover_after:
                self._calm_streak = 0
                self._transition(_STATE_NAMES[level], tracker)
        else:
            self._calm_streak = 0

    def _transition(self, new: str, tracker) -> None:
        old = self.state
        self.state = new
        snapshot = self.snapshot()
        if len(self.transitions) < MAX_TRANSITIONS:
            self.transitions.append({"from": old, "to": new, **snapshot})
        _log.info(
            "drift_transition",
            old=old,
            new=new,
            events=self.events,
            hit_rate=round(self.hit_ewma, 4),
            unseen=round(self.unseen_ewma, 4),
            resync=round(self.resync_ewma, 4),
            entropy=round(self.entropy_ewma, 4),
        )
        self._publish()
        flight = getattr(tracker, "flight", None) if tracker is not None else None
        if flight is None:
            flight = self.flight
        if flight is not None:
            flight.state = new
            flight.state_code = STATE_CODES[new]
            flight.mark_transition(old, new, snapshot)
            flight.auto_dump()
        for callback in self.callbacks:
            try:
                callback(old, new, snapshot)
            except Exception as exc:  # observer bugs must not kill tracking
                _log.info(
                    "drift_callback_error", callback=repr(callback), error=str(exc)
                )

    def _publish(self) -> None:
        registry = obs_metrics.get_registry()
        if not registry.enabled:
            return
        registry.gauge(
            "pythia_drift_state", help="Drift state (0=ok, 1=drifting, 2=diverged)"
        ).set(STATE_CODES[self.state])
        registry.gauge(
            "pythia_drift_hit_rate", help="EWMA prediction hit-rate"
        ).set(self.hit_ewma)
        registry.gauge(
            "pythia_drift_unseen_ratio",
            help="EWMA ratio of events unseen in the reference",
        ).set(self.unseen_ewma)
        registry.gauge(
            "pythia_drift_resync_rate", help="EWMA restarts + resyncs per event"
        ).set(self.resync_ewma)
        registry.gauge(
            "pythia_drift_entropy", help="EWMA candidate-set entropy (bits)"
        ).set(self.entropy_ewma)

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Current signal levels as a JSON-safe dict."""
        return {
            "state": self.state,
            "state_code": STATE_CODES[self.state],
            "events": self.events,
            "updates": self.updates,
            "hit_rate_ewma": self.hit_ewma,
            "unseen_ewma": self.unseen_ewma,
            "resync_ewma": self.resync_ewma,
            "entropy_ewma": self.entropy_ewma,
        }

    def report(self) -> dict:
        """Snapshot + baseline + transition history (JSON-safe); the
        experiment harness attaches this next to ``accuracy_report``."""
        out = self.snapshot()
        out["baseline"] = self.baseline.to_obj()
        out["transitions"] = list(self.transitions)
        return out


def baseline_from_replay(
    grammar,
    events,
    *,
    timing=None,
    distance: int = 1,
    predict_every: int = 1,
    max_candidates: int = 64,
    stride: int = 32,
    alpha: float = 0.4,
) -> DriftBaseline:
    """Capture a :class:`DriftBaseline` by replaying reference events.

    Drives a fresh tracker over ``events`` (terminal ids, e.g. the
    stream the reference grammar was recorded from), predicting every
    ``predict_every`` events at ``distance``, and returns the lifetime
    signal levels — what a live run *matching the reference* should
    sustain.  Entropy is the EWMA a monitor with the same ``stride`` /
    ``alpha`` would have settled on.
    """
    # imported lazily: repro.core.predict imports repro.obs at module
    # load, so a top-level import here would be circular
    from repro.core.predict import PythiaPredict

    tracker = PythiaPredict(grammar, timing, max_candidates=max_candidates)
    probe = DriftMonitor(stride=stride, alpha=alpha)
    tracker.attach_drift(probe)
    count = 0
    for terminal in events:
        tracker.observe(terminal)
        count += 1
        if predict_every and count % predict_every == 0:
            tracker.predict(distance)
    probe.update(tracker)  # absorb the tail block
    accuracy = tracker.accuracy
    scored = accuracy.hits + accuracy.misses
    observed = tracker.observed
    return DriftBaseline(
        hit_rate=accuracy.hits / scored if scored else 1.0,
        unseen_ratio=tracker.unknown / observed if observed else 0.0,
        resync_rate=(
            (accuracy.resyncs + accuracy.unexpected_restarts) / observed
            if observed
            else 0.0
        ),
        entropy=probe.entropy_ewma,
    )
