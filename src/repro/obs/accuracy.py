"""Online scoring of oracle predictions against the real event stream.

Table 1 and Figs. 7–10 of the paper are all accuracy claims; this module
turns them into numbers any run can print while it happens.  An
:class:`AccuracyTracker` lives inside every
:class:`~repro.core.predict.PythiaPredict`: each :meth:`note_prediction`
registers what the oracle just claimed (the terminal ``distance`` events
ahead, optionally with an ETA), and each :meth:`note_observation` scores
every registered claim whose target event has now happened —

- **hit / miss** — did the predicted terminal occur at the target index;
- **time error** — ``|actual elapsed − predicted ETA|`` whenever both
  ends carry timestamps (the paper's §II-C duration estimates);
- **lost / resync** — transitions of the tracker's knowledge state
  (§II-B2): an observation that leaves the tracker without candidates
  counts as *lost*, the first one that re-acquires a position counts as
  a *resync*.

A bounded window yields a rolling hit-rate next to the lifetime one, so
long runs can see accuracy drift.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Iterable

__all__ = ["AccuracyTracker", "EPISODE_BUCKETS", "aggregate_stats", "merge_reports"]

#: pending predictions kept at most (a runtime asking for predictions it
#: never lets resolve must not grow memory without bound)
MAX_PENDING = 4096

#: ``le`` bounds of the lost-episode length histogram (events spent lost
#: per episode); lengths above the last bound land in the overflow slot
EPISODE_BUCKETS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


class AccuracyTracker:
    """Scores every observation against previously made predictions."""

    __slots__ = (
        "window_size",
        "hits",
        "misses",
        "lost_events",
        "resyncs",
        "unexpected_restarts",
        "time_scored",
        "time_err_sum",
        "time_err_max",
        "_window",
        "_window_hits",
        "_pending",
        "_index",
        "_last_now",
        "_was_lost",
        "episode_count",
        "episode_len_sum",
        "episode_len_max",
        "_episode_counts",
        "_episode_len",
    )

    def __init__(self, *, window_size: int = 256) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.window_size = window_size
        self.hits = 0
        self.misses = 0
        self.lost_events = 0
        self.resyncs = 0
        self.unexpected_restarts = 0
        self.time_scored = 0
        self.time_err_sum = 0.0
        self.time_err_max = 0.0
        self._window: deque[bool] = deque(maxlen=window_size)
        self._window_hits = 0
        #: (target_index, predicted_terminal, eta, base_time)
        self._pending: deque[tuple[int, int | None, float | None, float | None]] = (
            deque()
        )
        self._index = 0
        self._last_now: float | None = None
        self._was_lost = False
        #: completed lost episodes (lost → resync), histogrammed by how
        #: many observations the tracker spent without candidates
        self.episode_count = 0
        self.episode_len_sum = 0
        self.episode_len_max = 0
        self._episode_counts = [0] * (len(EPISODE_BUCKETS) + 1)
        self._episode_len = 0

    # ------------------------------------------------------------------

    def note_prediction(
        self,
        terminal: int | None,
        *,
        distance: int = 1,
        eta: float | None = None,
        now: float | None = None,
    ) -> None:
        """Register one oracle claim, to be scored ``distance`` events later.

        ``now`` anchors the ETA; when omitted, the timestamp of the last
        observation is used (the common observe-then-predict pattern).
        """
        if len(self._pending) >= MAX_PENDING:
            self._pending.popleft()
        base = now if now is not None else self._last_now
        self._pending.append((self._index + distance, terminal, eta, base))

    def note_observation(
        self,
        terminal: int | None,
        *,
        matched: bool,
        lost: bool,
        now: float | None = None,
    ) -> None:
        """Score one observed event against every due prediction.

        ``terminal`` is the observed event id (``None`` when the event
        was never seen in the reference run); ``matched`` / ``lost`` are
        the tracker's outcome for this observation.
        """
        self._index += 1
        index = self._index
        pending = self._pending
        while pending and pending[0][0] <= index:
            target, predicted, eta, base = pending.popleft()
            if target < index:
                continue  # should not happen: indices are monotone
            hit = (
                predicted is not None and terminal is not None and predicted == terminal
            )
            if hit:
                self.hits += 1
            else:
                self.misses += 1
            if len(self._window) == self.window_size and self._window[0]:
                self._window_hits -= 1
            self._window.append(hit)
            if hit:
                self._window_hits += 1
            if hit and eta is not None and base is not None and now is not None:
                err = abs((now - base) - eta)
                self.time_scored += 1
                self.time_err_sum += err
                if err > self.time_err_max:
                    self.time_err_max = err
        if now is not None:
            self._last_now = now
        if lost:
            # an episode counts once, however many lost observations or
            # repeated mismatches it spans; its length accumulates here
            if not self._was_lost:
                self.lost_events += 1
            self._episode_len += 1
            # no candidate position: queued claims can never resolve
            pending.clear()
            self._was_lost = True
        else:
            if self._was_lost:
                # exactly one resync per lost episode: the first
                # observation that re-acquires a candidate position
                self.resyncs += 1
                length = self._episode_len
                self._episode_len = 0
                self.episode_count += 1
                self.episode_len_sum += length
                if length > self.episode_len_max:
                    self.episode_len_max = length
                self._episode_counts[bisect_left(EPISODE_BUCKETS, length)] += 1
            if not matched:
                self.unexpected_restarts += 1
            self._was_lost = False

    # ------------------------------------------------------------------

    @property
    def scored(self) -> int:
        """Predictions scored so far (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Lifetime fraction of scored predictions that hit."""
        scored = self.scored
        return self.hits / scored if scored else 0.0

    @property
    def rolling_hit_rate(self) -> float:
        """Hit fraction over the last ``window_size`` scored predictions."""
        n = len(self._window)
        return self._window_hits / n if n else 0.0

    @property
    def mean_abs_time_error(self) -> float:
        """Mean ``|actual − predicted|`` delay over time-scored hits."""
        return self.time_err_sum / self.time_scored if self.time_scored else 0.0

    def episode_histogram(self) -> dict:
        """Completed lost-episode lengths: count/sum/max plus bucket
        counts aligned with :data:`EPISODE_BUCKETS` (last = overflow)."""
        return {
            "count": self.episode_count,
            "sum": self.episode_len_sum,
            "max": self.episode_len_max,
            "bucket_counts": list(self._episode_counts),
        }

    def report(self) -> dict:
        """Everything above as one plain dict (JSON-safe)."""
        return {
            "predictions_scored": self.scored,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "rolling_hit_rate": self.rolling_hit_rate,
            "lost_events": self.lost_events,
            "resyncs": self.resyncs,
            "unexpected_restarts": self.unexpected_restarts,
            "time_scored": self.time_scored,
            "mean_abs_time_error": self.mean_abs_time_error,
            "max_abs_time_error": self.time_err_max,
            "lost_episode_lengths": self.episode_histogram(),
        }


def merge_reports(reports: Iterable[dict]) -> dict:
    """Aggregate per-thread :meth:`AccuracyTracker.report` dicts.

    Counters add; rates are recomputed from the merged counters; the
    rolling rate becomes the scored-weighted mean of the inputs (the
    windows themselves cannot be merged).
    """
    out = {
        "predictions_scored": 0,
        "hits": 0,
        "misses": 0,
        "hit_rate": 0.0,
        "rolling_hit_rate": 0.0,
        "lost_events": 0,
        "resyncs": 0,
        "unexpected_restarts": 0,
        "time_scored": 0,
        "mean_abs_time_error": 0.0,
        "max_abs_time_error": 0.0,
        "lost_episode_lengths": {
            "count": 0,
            "sum": 0,
            "max": 0,
            "bucket_counts": [0] * (len(EPISODE_BUCKETS) + 1),
        },
    }
    err_sum = 0.0
    rolling_weighted = 0.0
    episodes = out["lost_episode_lengths"]
    for rep in reports:
        for key in (
            "predictions_scored",
            "hits",
            "misses",
            "lost_events",
            "resyncs",
            "unexpected_restarts",
            "time_scored",
        ):
            out[key] += rep.get(key, 0)
        err_sum += rep.get("mean_abs_time_error", 0.0) * rep.get("time_scored", 0)
        rolling_weighted += rep.get("rolling_hit_rate", 0.0) * rep.get(
            "predictions_scored", 0
        )
        if rep.get("max_abs_time_error", 0.0) > out["max_abs_time_error"]:
            out["max_abs_time_error"] = rep["max_abs_time_error"]
        hist = rep.get("lost_episode_lengths")
        if hist:
            episodes["count"] += hist.get("count", 0)
            episodes["sum"] += hist.get("sum", 0)
            if hist.get("max", 0) > episodes["max"]:
                episodes["max"] = hist["max"]
            for idx, c in enumerate(hist.get("bucket_counts", ())):
                if idx < len(episodes["bucket_counts"]):
                    episodes["bucket_counts"][idx] += c
    if out["predictions_scored"]:
        out["hit_rate"] = out["hits"] / out["predictions_scored"]
        out["rolling_hit_rate"] = rolling_weighted / out["predictions_scored"]
    if out["time_scored"]:
        out["mean_abs_time_error"] = err_sum / out["time_scored"]
    return out


def aggregate_stats(reports: list[dict]) -> dict:
    """Aggregate full per-thread ``PythiaPredict.stats()`` dicts.

    Extends :func:`merge_reports` with the tracker's base counters
    (observed / unexpected / unknown / candidates / matched /
    predictions / pruned).  A single report is returned as-is, so a
    one-thread aggregate is bit-identical to that thread's view.
    """
    if len(reports) == 1:
        return dict(reports[0])
    out = merge_reports(reports)
    for key in (
        "observed",
        "unexpected",
        "unknown",
        "candidates",
        "matched",
        "predictions",
        "pruned",
    ):
        out[key] = sum(rep.get(key, 0) for rep in reports)
    return out
