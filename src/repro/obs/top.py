"""``pythia-trace top`` — a live ANSI ops console for the oracle daemon.

Stdlib-only (ANSI escape codes, no curses dependency): the console
polls the daemon's ``metrics`` and ``sessions`` ops, diffs successive
scrapes for throughput, reads latency quantiles back out of the
Prometheus histogram buckets (:func:`~repro.obs.metrics.parse_prometheus_text`),
and renders one frame per interval:

- throughput (requests/s, predictions/s, events/s) from counter deltas;
- request latency split by component — dispatch **queue**
  (``pythia_server_queue_seconds``) and per-op **handler** time
  (``pythia_server_request_seconds{op=...}``) — as p50/p99;
- when the daemon keeps a metrics history ring
  (:mod:`repro.obs.history`), one sparkline row per tracked counter —
  per-interval increase over the window, with the ring's own rate();
- one row per tracked client session: requests, errors, req/s (diffed
  between successive frames), last rid, rid regressions, hit rate,
  drift flag, handler p50/p99 and age.

The renderer is a pure function of two successive snapshots, so tests
drive it with a fake ``poll`` and a ``StringIO`` — no TTY, daemon or
sleep involved (``run(iterations=N, ...)``).
"""

from __future__ import annotations

import sys
import time
from typing import Callable

from repro.obs.metrics import ParsedMetrics, parse_prometheus_text

__all__ = ["OpsConsole"]

#: ANSI clear-screen + cursor-home, prepended to frames on a TTY
_CLEAR = "\x1b[2J\x1b[H"

#: eight-level block characters for sparklines
_SPARK = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float], width: int = 30) -> str:
    """Render a list of samples as a fixed-width unicode sparkline."""
    if not values:
        return ""
    values = values[-width:]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * len(_SPARK)))] for v in values
    )


def _fmt_us(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}ms"
    return f"{value:.0f}µs"


def _fmt_rate(value: float | None) -> str:
    return "-" if value is None else f"{value:,.0f}/s"


class OpsConsole:
    """Polls a daemon and renders live telemetry frames.

    Parameters
    ----------
    poll:
        Zero-argument callable returning ``{"metrics": <prometheus
        text>, "sessions": <sessions-op payload>}`` (either key may be
        absent); raising marks the daemon unreachable for that frame.
    interval:
        Seconds between frames in :meth:`run`.
    out:
        Stream frames are written to (default ``sys.stdout``).
    clear:
        Prefix each frame with an ANSI clear; default: only when
        ``out`` is a TTY, so piped/captured output stays appendable.
    """

    def __init__(
        self,
        poll: Callable[[], dict],
        *,
        interval: float = 1.0,
        out=None,
        clear: bool | None = None,
        title: str = "pythia ops",
    ) -> None:
        self.poll = poll
        self.interval = interval
        self.out = out if out is not None else sys.stdout
        if clear is None:
            clear = bool(getattr(self.out, "isatty", lambda: False)())
        self.clear = clear
        self.title = title
        self._prev: ParsedMetrics | None = None
        self._prev_t: float | None = None
        #: sid -> request count at the previous frame (per-session req/s)
        self._prev_requests: dict[str, int] = {}

    # -- rendering ------------------------------------------------------

    def _rate(self, cur: ParsedMetrics, name: str, dt: float | None) -> float | None:
        if self._prev is None or dt is None or dt <= 0:
            return None
        now = cur.value(name)
        before = self._prev.value(name)
        if now is None or before is None:
            return None
        return max(0.0, now - before) / dt

    def frame(self, snapshot: dict, dt: float | None = None) -> str:
        """Render one frame from a ``poll()`` snapshot (pure, testable)."""
        lines: list[str] = []
        metrics_text = snapshot.get("metrics") or ""
        cur = parse_prometheus_text(metrics_text)
        table = snapshot.get("sessions") or {}
        active = cur.value("pythia_server_sessions_active")
        draining = cur.value("pythia_server_draining")
        header = f"{self.title} — {time.strftime('%H:%M:%S')}"
        if active is not None:
            header += f"  sessions: {int(active)} live"
        if table:
            header += (
                f" / {table.get('tracked', 0)} tracked"
                f" (cap {table.get('capacity', '?')},"
                f" evicted {table.get('evicted', 0)})"
            )
        if draining:
            header += "  [DRAINING]"
        lines.append(header)

        req = self._rate(cur, "pythia_server_requests_total", dt)
        pred = self._rate(cur, "pythia_server_predictions_served", dt)
        obs = self._rate(cur, "pythia_server_events_observed", dt)
        lines.append(
            f"throughput  requests {_fmt_rate(req)}   "
            f"predictions {_fmt_rate(pred)}   events {_fmt_rate(obs)}"
        )

        history = snapshot.get("history") or {}
        series = history.get("series") or {}
        rates = history.get("rates") or {}
        if series or rates:
            lines.append("")
            for key in sorted(set(series) | set(rates)):
                points = series.get(key) or []
                values = [v for _t, v in points]
                # counters: sparkline the per-interval increase, so the
                # row shows load over time rather than a ramp to the max
                steps = [
                    b - a for a, b in zip(values, values[1:]) if b >= a
                ] or values
                rate = rates.get(key)
                short = key.removeprefix("pythia_").removesuffix("_total")
                lines.append(
                    f"{short[:24]:24s} {_sparkline(steps):30s} {_fmt_rate(rate):>10s}"
                )

        lines.append("")
        lines.append(f"{'latency':24s} {'p50':>10s} {'p99':>10s}")
        q50 = cur.quantile("pythia_server_queue_seconds", 0.50)
        q99 = cur.quantile("pythia_server_queue_seconds", 0.99)
        if q50 is not None:
            lines.append(
                f"{'queue (dispatch)':24s} "
                f"{_fmt_us(q50 * 1e6):>10s} {_fmt_us(q99 * 1e6):>10s}"
            )
        pairs = sorted(
            {
                (labels.get("op"), labels.get("proto", ""))
                for labels, _count in cur.series("pythia_server_request_seconds_count")
                if labels.get("op")
            }
        )
        for op, proto in pairs:
            labels = {"op": op, "proto": proto} if proto else {"op": op}
            p50 = cur.quantile("pythia_server_request_seconds", 0.50, labels)
            p99 = cur.quantile("pythia_server_request_seconds", 0.99, labels)
            if p50 is None:
                continue
            # JSON is the default framing; only non-JSON protos suffix
            row = "handler:" + op
            if proto and proto != "json":
                row += "/" + proto
            lines.append(
                f"{row:24s} "
                f"{_fmt_us(p50 * 1e6):>10s} {_fmt_us(p99 * 1e6):>10s}"
            )

        rows = table.get("sessions") or []
        next_requests: dict[str, int] = {}
        if rows:
            lines.append("")
            lines.append(
                f"{'session':16s} {'reqs':>7s} {'req/s':>8s} {'err':>5s} {'rid':>8s} "
                f"{'dup':>4s} {'hit%':>6s} {'drift':>8s} "
                f"{'p50':>9s} {'p99':>9s} {'age':>7s}"
            )
            for row in rows[-20:]:  # most recently active last
                hit = row.get("hit_rate")
                drift = row.get("drift_state") or "-"
                handler = row.get("handler_us") or {}
                flag = "!" if drift in ("drifting", "diverged") else ""
                hit_text = f"{100 * hit:5.1f}%" if hit is not None else f"{'-':>6s}"
                sid = str(row.get("sid", "?"))
                requests = row.get("requests", 0)
                next_requests[sid] = requests
                before = self._prev_requests.get(sid)
                srate = None
                if before is not None and dt and dt > 0:
                    srate = max(0, requests - before) / dt
                lines.append(
                    f"{sid[:16]:16s} "
                    f"{requests:>7d} "
                    f"{_fmt_rate(srate):>8s} "
                    f"{row.get('errors', 0):>5d} "
                    f"{row.get('last_rid', 0):>8d} "
                    f"{row.get('rid_regressions', 0):>4d} "
                    f"{hit_text} "
                    f"{flag + drift:>8s} "
                    f"{_fmt_us(handler.get('p50')):>9s} "
                    f"{_fmt_us(handler.get('p99')):>9s} "
                    f"{row.get('age_s', 0):>6.1f}s"
                )
        self._prev = cur
        self._prev_requests = next_requests
        return "\n".join(lines) + "\n"

    # -- driving --------------------------------------------------------

    def tick(self) -> bool:
        """Poll once and write one frame; False when the poll failed."""
        now = time.monotonic()
        dt = None if self._prev_t is None else now - self._prev_t
        try:
            snapshot = self.poll()
        except Exception as exc:  # daemon down: report, keep polling
            self.out.write(
                (_CLEAR if self.clear else "")
                + f"{self.title} — daemon unreachable: {exc}\n"
            )
            self.out.flush()
            self._prev = None
            self._prev_t = None
            self._prev_requests = {}
            return False
        frame = self.frame(snapshot, dt)
        self._prev_t = now
        self.out.write((_CLEAR if self.clear else "") + frame)
        self.out.flush()
        return True

    def run(self, iterations: int | None = None) -> int:
        """Render frames every ``interval`` seconds.

        ``iterations`` bounds the frame count (None = until Ctrl-C).
        Returns 0 when the last poll succeeded, 1 otherwise.
        """
        ok = False
        count = 0
        try:
            while iterations is None or count < iterations:
                ok = self.tick()
                count += 1
                if iterations is not None and count >= iterations:
                    break
                time.sleep(self.interval)
        except KeyboardInterrupt:
            pass
        return 0 if ok else 1
