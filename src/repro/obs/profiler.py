"""Continuous sampling profiler: where does daemon CPU actually go?

A background thread wakes at a configurable rate (``PYTHIA_PROFILE_HZ``,
default 0 = off; the daemon processes enable 19 Hz by default) and walks
``sys._current_frames()``, folding every thread's stack into a
collapsed-stack histogram::

    pythia-oracle;op:observe_predict;daemon._dispatch;... 148

Roots carry the thread name and — when the sampled thread is inside a
tagged region (:func:`tag_op`, used by the daemon dispatch loop and
``Pythia.save``) — an ``op:<name>`` frame, so a flamegraph attributes
samples to *named ops* (``observe_predict``, ``save_trace``) instead of
one opaque interpreter frame.

Output formats:

- :meth:`SamplingProfiler.collapsed` — Brendan Gregg's collapsed-stack
  text, one ``stack count`` line, loadable by any flamegraph tool;
- :func:`render_flamegraph` — a self-contained SVG flamegraph (no
  external assets, no JavaScript required to read it) built from the
  same stacks, served by ``/profile?seconds=N&format=svg`` and written
  by ``pythia-trace profile``.

Cost model: sampling is O(threads × stack depth) per tick, entirely off
the request path; :func:`tag_op` is a dict store/restore and collapses
to a shared no-op context manager while no profiler is installed, so
the daemon's per-request cost is zero until profiling is turned on.
The always-on budget (19 Hz + metrics history + 1 Hz scrape) is
enforced at <5% by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import html
import os
import sys
import threading
import time

__all__ = [
    "PROFILE_HZ_ENV",
    "SamplingProfiler",
    "disable_profiler",
    "enable_profiler",
    "get_profiler",
    "profile_window",
    "profiler_from_env",
    "render_collapsed",
    "render_flamegraph",
    "tag_op",
]

#: sampling rate for the process profiler; 0 (the default) means off.
#: 19 Hz (a prime, per the usual profiling folklore) avoids aliasing
#: against 10/100 Hz timers; daemon entry points default to it.
PROFILE_HZ_ENV = "PYTHIA_PROFILE_HZ"

DEFAULT_HZ = 19.0

#: GIL switch interval forced while a profiler runs.  An in-process
#: sampler can only observe another thread at its last GIL pause point;
#: with CPython's default 5 ms interval a handler burst shorter than
#: 5 ms is always paused at socket I/O, never mid-handler, so compute
#: would be invisible (every sample lands in ``read_frame``).  1 ms
#: makes pause points track compute bursts; the cost is bounded by the
#: <5% always-on budget in ``benchmarks/bench_obs_overhead.py``.
SWITCH_INTERVAL_S = 0.001

#: thread ident -> active op tag.  A plain dict mutated under the GIL:
#: each thread writes only its own key, the sampler only reads, and a
#: torn read at worst mis-tags one sample.
_tags: dict[int, str] = {}


class _NullTag:
    """Shared no-op for :func:`tag_op` while no profiler is installed."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_TAG = _NullTag()


class _Tag:
    __slots__ = ("name", "prev", "ident")

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self):
        self.ident = threading.get_ident()
        self.prev = _tags.get(self.ident)
        _tags[self.ident] = self.name
        return self

    def __exit__(self, *exc):
        if self.prev is None:
            _tags.pop(self.ident, None)
        else:
            _tags[self.ident] = self.prev
        return False


def tag_op(name: str):
    """Tag the calling thread with an op name for the sampling window.

    Free (a shared no-op) while no profiler is installed, so it can sit
    on hot paths permanently — the daemon wraps every handler call and
    ``Pythia.save`` wraps trace serialisation.
    """
    if _profiler is None:
        return _NULL_TAG
    return _Tag(name)


def _frame_name(code) -> str:
    base = os.path.basename(code.co_filename)
    if base.endswith(".py"):
        base = base[:-3]
    return f"{base}.{code.co_name}"


class SamplingProfiler:
    """Samples every thread's stack at ``hz`` into collapsed-stack counts.

    Counts only grow; :meth:`snapshot` + :meth:`diff_since` carve out
    windows (the ``/profile?seconds=N`` endpoint takes a snapshot,
    sleeps, and diffs) without disturbing the cumulative view.
    """

    def __init__(self, hz: float = DEFAULT_HZ, *, max_stack: int = 64) -> None:
        if hz <= 0:
            raise ValueError("hz must be > 0")
        self.hz = float(hz)
        self.max_stack = max_stack
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._started_at: float | None = None
        self._active_s = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._prev_switch: float | None = None

    # -- lifecycle ------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        current = sys.getswitchinterval()
        if current > SWITCH_INTERVAL_S:
            self._prev_switch = current
            sys.setswitchinterval(SWITCH_INTERVAL_S)
        self._stop.clear()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name="pythia-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        self._thread = None
        if self._prev_switch is not None:
            sys.setswitchinterval(self._prev_switch)
            self._prev_switch = None
        if self._started_at is not None:
            self._active_s += time.monotonic() - self._started_at
            self._started_at = None

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        next_tick = time.monotonic() + interval
        while not self._stop.is_set():
            delay = next_tick - time.monotonic()
            if delay > 0:
                if self._stop.wait(delay):
                    break
            else:
                next_tick = time.monotonic()  # fell behind: don't burst
            next_tick += interval
            self.sample_once(skip={own})

    # -- sampling -------------------------------------------------------

    def sample_once(self, skip: set[int] | frozenset[int] = frozenset()) -> int:
        """Take one sample of every live thread; returns threads sampled."""
        frames = sys._current_frames()
        names = {t.ident: t.name for t in threading.enumerate()}
        stacks: list[str] = []
        for ident, frame in frames.items():
            if ident in skip:
                continue
            parts: list[str] = []
            f = frame
            while f is not None and len(parts) < self.max_stack:
                parts.append(_frame_name(f.f_code))
                f = f.f_back
            parts.reverse()  # root first, leaf last
            root = [names.get(ident, f"thread-{ident}")]
            tag = _tags.get(ident)
            if tag is not None:
                root.append(f"op:{tag}")
            stacks.append(";".join(root + parts))
        with self._lock:
            for stack in stacks:
                self._counts[stack] = self._counts.get(stack, 0) + 1
            self._samples += len(stacks)
        return len(stacks)

    # -- views ----------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """Copy of the cumulative ``stack -> count`` histogram."""
        with self._lock:
            return dict(self._counts)

    def diff_since(self, before: dict[str, int]) -> dict[str, int]:
        """Stacks accumulated since ``before`` (a :meth:`snapshot`)."""
        now = self.snapshot()
        out: dict[str, int] = {}
        for stack, count in now.items():
            delta = count - before.get(stack, 0)
            if delta > 0:
                out[stack] = delta
        return out

    def collapsed(self, stacks: dict[str, int] | None = None) -> str:
        """Collapsed-stack text (``stack count`` per line, sorted)."""
        return render_collapsed(self.snapshot() if stacks is None else stacks)

    def report(self) -> dict:
        """Summary for the ``profile_dump`` op / ``/profile`` endpoint."""
        active = self._active_s
        if self._started_at is not None:
            active += time.monotonic() - self._started_at
        with self._lock:
            samples = self._samples
            distinct = len(self._counts)
        return {
            "hz": self.hz,
            "running": self.running,
            "samples": samples,
            "distinct_stacks": distinct,
            "active_seconds": round(active, 3),
        }

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples = 0
        self._active_s = 0.0
        if self._started_at is not None:
            self._started_at = time.monotonic()


# ----------------------------------------------------------------------
# the process-wide profiler
# ----------------------------------------------------------------------

_lock = threading.Lock()
_profiler: SamplingProfiler | None = None


def get_profiler() -> SamplingProfiler | None:
    """The process profiler, or None while profiling is off."""
    return _profiler


def enable_profiler(hz: float = DEFAULT_HZ) -> SamplingProfiler:
    """Install (or return) the process profiler and start sampling."""
    global _profiler
    with _lock:
        if _profiler is None:
            _profiler = SamplingProfiler(hz)
        _profiler.start()
        return _profiler


def disable_profiler() -> None:
    """Stop and discard the process profiler (no-op when off)."""
    global _profiler
    with _lock:
        prof, _profiler = _profiler, None
    if prof is not None:
        prof.stop()


def profiler_from_env(default_hz: float = 0.0) -> SamplingProfiler | None:
    """Honour ``PYTHIA_PROFILE_HZ`` (falling back to ``default_hz``).

    Daemon entry points (``pythia-trace serve``, the worker main) pass
    ``default_hz=19.0`` so long-lived servers profile out of the box;
    library use keeps the 0 = off default.
    """
    raw = os.environ.get(PROFILE_HZ_ENV, "").strip()
    try:
        hz = float(raw) if raw else float(default_hz)
    except ValueError:
        hz = float(default_hz)
    if hz <= 0:
        return None
    return enable_profiler(hz)


def profile_window(
    seconds: float, hz: float = DEFAULT_HZ
) -> tuple[dict[str, int], dict]:
    """Collect stacks for ``seconds`` and return ``(stacks, report)``.

    Uses the running process profiler when there is one (a snapshot
    diff — concurrent windows don't disturb each other); otherwise
    spins up a temporary profiler for the window.  Requesting ``hz``
    *above* the running profiler's rate runs a temporary booster for
    the window instead — short windows over fast handlers need denser
    sampling than the always-on 19 Hz — without touching the process
    profiler (op tags are shared module state, so boosted samples keep
    their op attribution).
    """
    prof = _profiler
    temporary = prof is None or not prof.running or (hz > 0 and hz > prof.hz)
    if temporary:
        prof = SamplingProfiler(hz)
        prof.start()
    before = prof.snapshot()
    time.sleep(max(0.0, seconds))
    stacks = prof.diff_since(before)
    if temporary:
        prof.stop()
    report = prof.report()
    report["window_seconds"] = seconds
    return stacks, report


# ----------------------------------------------------------------------
# rendering: collapsed text and a self-contained SVG flamegraph
# ----------------------------------------------------------------------


def render_collapsed(stacks: dict[str, int]) -> str:
    """Collapsed-stack text: one ``stack count`` line, sorted by stack."""
    lines = [f"{stack} {count}" for stack, count in sorted(stacks.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> dict[str, int]:
    """Inverse of :func:`render_collapsed` (merges duplicate stacks)."""
    out: dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        try:
            out[stack] = out.get(stack, 0) + int(count)
        except ValueError:
            continue
    return out


def _color(name: str) -> str:
    """Deterministic warm color per frame name (flamegraph convention)."""
    h = 0
    for ch in name:
        h = (h * 31 + ord(ch)) & 0xFFFFFF
    r = 205 + (h & 0x1F)  # 205..236
    g = 60 + ((h >> 5) & 0x7F)  # 60..187
    b = (h >> 12) & 0x37  # 0..55
    return f"rgb({r},{g},{b})"


def render_flamegraph(
    stacks: dict[str, int],
    *,
    title: str = "pythia flamegraph",
    width: int = 1200,
) -> str:
    """Render collapsed stacks as a self-contained SVG flamegraph.

    Static SVG, no scripts or external assets: rectangles nest by call
    depth, widths are proportional to sample counts, and every frame
    carries a ``<title>`` tooltip with its count and share — enough to
    read in any browser or embed in CI artifacts.
    """
    total = sum(stacks.values())
    # trie of frames: name -> [count, children]
    root: dict = {}

    def _insert(node: dict, frames: list[str], count: int) -> None:
        for frame in frames:
            entry = node.setdefault(frame, [0, {}])
            entry[0] += count
            node = entry[1]

    for stack, count in stacks.items():
        _insert(root, stack.split(";"), count)

    row_h = 17
    font = 12
    depth_max = 0

    rects: list[str] = []

    def _emit(node: dict, x: float, depth: int, scale: float) -> None:
        nonlocal depth_max
        depth_max = max(depth_max, depth)
        for name in sorted(node):
            count, children = node[name]
            w = count * scale
            if w < 0.25:  # sub-quarter-pixel: skip frame and subtree
                x += w
                continue
            y = depth * row_h
            pct = 100.0 * count / total if total else 0.0
            label = html.escape(name, quote=True)
            tip = f"{label} — {count} samples ({pct:.1f}%)"
            rects.append(
                f'<g><title>{tip}</title>'
                f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" height="{row_h - 1}" '
                f'fill="{_color(name)}" rx="1"/>'
            )
            if w >= font * 2.5:
                max_chars = max(1, int(w / (font * 0.62)))
                text = name if len(name) <= max_chars else name[: max_chars - 1] + "…"
                rects.append(
                    f'<text x="{x + 3:.2f}" y="{y + row_h - 5}" '
                    f'font-size="{font}" font-family="monospace">'
                    f"{html.escape(text)}</text>"
                )
            rects.append("</g>")
            _emit(children, x, depth + 1, scale)
            x += w

    scale = (width - 20) / total if total else 0.0
    _emit(root, 10.0, 0, scale)

    height = (depth_max + 3) * row_h + 30
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        f'<rect width="100%" height="100%" fill="#fdfdfd"/>'
        f'<text x="10" y="{(depth_max + 2) * row_h + 14}" font-size="{font}" '
        f'font-family="monospace">{html.escape(title)} — {total} samples</text>'
    )
    return head + "".join(rects) + "</svg>"
