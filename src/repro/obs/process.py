"""Process-level metrics: CPU, RSS, fds, threads, start time.

Standard ``process_*``-style gauges every Prometheus setup expects,
published under the ``pythia_process_`` prefix by a scrape-time
collector (:func:`register_process_metrics`), so hot paths pay nothing
and values are fresh at every scrape:

- ``pythia_process_cpu_seconds_total`` — user + system CPU consumed;
- ``pythia_process_resident_memory_bytes`` — RSS;
- ``pythia_process_virtual_memory_bytes`` — VSZ;
- ``pythia_process_open_fds`` — open file descriptors;
- ``pythia_process_threads`` — OS threads;
- ``pythia_process_start_time_seconds`` — unix epoch start time.

Values come from ``/proc/self`` when available.  Off Linux (or in a
container hiding procfs) the collector degrades gracefully: CPU falls
back to :func:`os.times`, threads to :func:`threading.active_count`,
start time to import time, and memory/fd gauges are simply omitted —
never an exception at scrape time.
"""

from __future__ import annotations

import os
import threading
import time

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["read_process_stats", "register_process_metrics"]

try:
    _CLK_TCK = os.sysconf("SC_CLK_TCK")
except (AttributeError, OSError, ValueError):
    _CLK_TCK = 100
try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, OSError, ValueError):
    _PAGE_SIZE = 4096

#: fallback start time when /proc is unavailable: module import
_IMPORT_TIME = time.time()

_PROC = "/proc"


def _boot_time() -> float | None:
    try:
        with open(f"{_PROC}/stat", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("btime "):
                    return float(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return None


def read_process_stats(proc: str = _PROC) -> dict[str, float]:
    """Read this process's stats, preferring ``/proc``, degrading off it.

    Returns whichever of ``cpu_seconds`` / ``rss_bytes`` / ``vsize_bytes``
    / ``open_fds`` / ``threads`` / ``start_time`` could be determined —
    possibly only the portable fallbacks, never raising.
    """
    out: dict[str, float] = {}
    try:
        with open(f"{proc}/self/stat", encoding="ascii") as fh:
            raw = fh.read()
        # comm may contain spaces/parens: split after the *last* ')'
        _, _, rest = raw.rpartition(")")
        fields = rest.split()
        # rest[0] is field 3 ("state"); /proc(5) field numbers are 1-based
        utime, stime = float(fields[11]), float(fields[12])  # fields 14, 15
        out["cpu_seconds"] = (utime + stime) / _CLK_TCK
        out["threads"] = float(fields[17])  # field 20
        starttime_ticks = float(fields[19])  # field 22, since boot
        out["vsize_bytes"] = float(fields[20])  # field 23
        out["rss_bytes"] = float(fields[21]) * _PAGE_SIZE  # field 24, pages
        btime = _boot_time()
        if btime is not None:
            out["start_time"] = btime + starttime_ticks / _CLK_TCK
    except (OSError, ValueError, IndexError):
        pass
    try:
        out["open_fds"] = float(len(os.listdir(f"{proc}/self/fd")))
    except OSError:
        pass
    if "cpu_seconds" not in out:
        times = os.times()
        out["cpu_seconds"] = times.user + times.system
    out.setdefault("threads", float(threading.active_count()))
    out.setdefault("start_time", _IMPORT_TIME)
    return out


def _collect_process_metrics(registry: MetricsRegistry) -> None:
    stats = read_process_stats()
    registry.counter(
        "pythia_process_cpu_seconds_total",
        help="Total user and system CPU time spent in seconds",
    )._set_total(stats["cpu_seconds"])
    registry.gauge(
        "pythia_process_threads", help="OS threads in this process"
    ).set(stats["threads"])
    registry.gauge(
        "pythia_process_start_time_seconds",
        help="Start time of the process since unix epoch in seconds",
    ).set(stats["start_time"])
    if "rss_bytes" in stats:
        registry.gauge(
            "pythia_process_resident_memory_bytes",
            help="Resident memory size in bytes",
        ).set(stats["rss_bytes"])
    if "vsize_bytes" in stats:
        registry.gauge(
            "pythia_process_virtual_memory_bytes",
            help="Virtual memory size in bytes",
        ).set(stats["vsize_bytes"])
    if "open_fds" in stats:
        registry.gauge(
            "pythia_process_open_fds", help="Open file descriptors"
        ).set(stats["open_fds"])


def register_process_metrics(registry: MetricsRegistry | None = None) -> None:
    """Install the process collector on ``registry`` (default: process one).

    Idempotent — collector registration dedups by function identity, so
    every daemon/supervisor in a process can call this at start.
    """
    registry = registry if registry is not None else get_registry()
    registry.register_collector(_collect_process_metrics)
