"""HTTP observability endpoint: the daemon's surface for standard infra.

Everything the oracle service knows about itself — metrics, sessions,
stats, profiles, history — reachable by plain HTTP GET, so Prometheus,
curl and a browser work without speaking the length-prefixed frame
protocol:

========================  =============================================
``/metrics``              Prometheus text exposition (same page as the
                          ``metrics`` op)
``/healthz``              liveness: 200 while the process serves
``/ready``                readiness: 200, or **503 while draining** so
                          load balancers stop routing before shutdown
``/sessions.json``        the ``sessions`` op as JSON
``/stats.json``           the ``stats`` op as JSON
``/profile?seconds=N``    collapsed stacks (``&format=svg`` for a
                          self-contained flamegraph) from the sampling
                          profiler
``/history.json``         metrics history ring: series + rates
                          (``?window=60&keys=a,b``)
``/``                     human index of the routes above
========================  =============================================

Zero dependencies: stdlib ``http.server`` with ``ThreadingHTTPServer``
(one thread per request, daemon threads) and a per-connection socket
timeout so slowloris clients are dropped instead of wedging the
acceptor.  The server is decoupled from the daemon through a small
*provider* interface (``metrics_text`` / ``readiness`` /
``sessions_view`` / ``stats_view`` / ``profile_view`` /
``history_view``) implemented by both :class:`~repro.server.daemon.
OracleServer` and :class:`~repro.server.supervisor.OracleSupervisor`
(which fans out to its workers and merges with ``worker`` labels) —
``repro.obs`` never imports ``repro.server``.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["ObservabilityHTTPServer", "PROMETHEUS_CONTENT_TYPE"]

_log = get_logger("httpd")

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: hard ceiling on one profiling window, so a typo'd ``seconds=`` can't
#: pin a request thread (and an in-flight slot) for an hour
MAX_PROFILE_SECONDS = 60.0

_INDEX = """\
pythia observability endpoint

  /metrics          Prometheus text exposition
  /healthz          liveness (200 while serving)
  /ready            readiness (503 while draining)
  /sessions.json    per-session telemetry
  /stats.json       daemon stats
  /profile          ?seconds=N&format=collapsed|svg&hz=H
  /history.json     ?window=SECONDS&keys=k1,k2
"""


class ObservabilityHTTPServer:
    """Serve the observability surface of a ``provider`` over HTTP.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`address` after :meth:`start`.  Requests are counted in
    ``pythia_http_requests_total{path,code}`` on ``registry`` (default:
    the process registry), which is why ``/metrics`` and the daemon's
    ``metrics`` op differ by exactly that family.
    """

    def __init__(
        self,
        provider,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registry: MetricsRegistry | None = None,
        request_timeout: float = 10.0,
    ) -> None:
        self.provider = provider
        self.registry = registry if registry is not None else get_registry()
        self.request_timeout = request_timeout
        outer = self

        class Handler(_ObsRequestHandler):
            server_ref = outer
            timeout = request_timeout

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ObservabilityHTTPServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="pythia-httpd",
            daemon=True,
        )
        self._thread.start()
        _log.info("httpd_started", url=self.url)
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5)
        self._thread = None
        self._httpd.server_close()
        _log.info("httpd_stopped", url=self.url)

    def __enter__(self) -> "ObservabilityHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class _ObsRequestHandler(BaseHTTPRequestHandler):
    """Routes GETs to the provider; every reply carries Content-Length."""

    server_ref: ObservabilityHTTPServer  # set by the enclosing server
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _log.debug("http_request", detail=format % args)

    def _count(self, route: str, code: int) -> None:
        self.server_ref.registry.counter(
            "pythia_http_requests_total",
            {"path": route, "code": str(code)},
            help="Observability endpoint requests served",
        ).inc()

    def _reply(self, code: int, body: str, content_type: str, route: str) -> None:
        payload = body.encode("utf-8")
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
        except (OSError, ValueError):
            return  # client went away mid-write; nothing to salvage
        self._count(route, code)

    def _reply_json(self, obj, route: str, code: int = 200) -> None:
        self._reply(code, json.dumps(obj, sort_keys=True) + "\n",
                    "application/json; charset=utf-8", route)

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        query = parse_qs(url.query)
        route = url.path.rstrip("/") or "/"
        try:
            handler = self._ROUTES.get(route)
            if handler is None:
                self._reply(404, f"no route {route!r}\n{_INDEX}",
                            "text/plain; charset=utf-8", "other")
                return
            handler(self, query)
        except Exception as exc:  # a provider bug must not kill the server
            _log.warning("http_handler_error", route=route, error=str(exc))
            self._reply(500, f"internal error: {exc}\n",
                        "text/plain; charset=utf-8", route)

    def _get_index(self, query) -> None:
        self._reply(200, _INDEX, "text/plain; charset=utf-8", "/")

    def _get_metrics(self, query) -> None:
        self._reply(200, self.server_ref.provider.metrics_text(),
                    PROMETHEUS_CONTENT_TYPE, "/metrics")

    def _get_healthz(self, query) -> None:
        self._reply(200, "ok\n", "text/plain; charset=utf-8", "/healthz")

    def _get_ready(self, query) -> None:
        ready, reason = self.server_ref.provider.readiness()
        self._reply(200 if ready else 503, reason + "\n",
                    "text/plain; charset=utf-8", "/ready")

    def _get_sessions(self, query) -> None:
        self._reply_json(self.server_ref.provider.sessions_view(), "/sessions.json")

    def _get_stats(self, query) -> None:
        self._reply_json(self.server_ref.provider.stats_view(), "/stats.json")

    def _get_profile(self, query) -> None:
        seconds = _float_param(query, "seconds", 0.0)
        seconds = max(0.0, min(MAX_PROFILE_SECONDS, seconds))
        fmt = (query.get("format") or ["collapsed"])[0]
        if fmt not in ("collapsed", "svg"):
            self._reply(400, f"unknown format {fmt!r} (collapsed|svg)\n",
                        "text/plain; charset=utf-8", "/profile")
            return
        hz = _float_param(query, "hz", 0.0)
        view = self.server_ref.provider.profile_view(seconds, fmt, hz)
        if fmt == "svg":
            self._reply(200, view["profile"], "image/svg+xml", "/profile")
        else:
            self._reply(200, view["profile"], "text/plain; charset=utf-8",
                        "/profile")

    def _get_history(self, query) -> None:
        window = _float_param(query, "window", 0.0) or None
        keys_raw = (query.get("keys") or [""])[0]
        keys = [k for k in keys_raw.split(",") if k] or None
        self._reply_json(
            self.server_ref.provider.history_view(window, keys), "/history.json"
        )

    _ROUTES = {
        "/": _get_index,
        "/metrics": _get_metrics,
        "/healthz": _get_healthz,
        "/ready": _get_ready,
        "/sessions.json": _get_sessions,
        "/stats.json": _get_stats,
        "/profile": _get_profile,
        "/history.json": _get_history,
    }

    def handle_one_request(self) -> None:
        try:
            super().handle_one_request()
        except socket.timeout:
            # slowloris / stalled client: drop the connection, keep serving
            self.close_connection = True
        except (ConnectionError, OSError):
            self.close_connection = True


def _float_param(query: dict, key: str, default: float) -> float:
    try:
        return float((query.get(key) or [default])[0])
    except (TypeError, ValueError):
        return default
