"""Fig 14 — resilience to unexpected events (Lulesh size 30, Pudding).

Asserted paper shapes: at low error rates PREDICT keeps a significant
advantage over VANILLA/RECORD; the advantage decays monotonically (up to
simulation noise) as the error rate grows, approaching VANILLA without
falling meaningfully below it.
"""

from __future__ import annotations

from repro.experiments.fig14 import fig14_error_rate, render_fig14

RATES = (0.0, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5)


def test_fig14_error_rate_sweep(benchmark):
    res = benchmark.pedantic(
        lambda: fig14_error_rate(rates=RATES),
        rounds=1, iterations=1,
    )
    print("\n" + render_fig14(res))

    # error-free: the full adaptive win
    assert res.predict[0] < res.vanilla * 0.75
    # low error rates still significantly better than vanilla
    assert res.predict[1] < res.vanilla * 0.85
    # decay: each higher error rate is no faster than half-rate earlier
    for lo, hi in zip(res.predict, res.predict[2:]):
        assert hi >= lo * 0.98
    # even at 50 % error rate, not meaningfully worse than vanilla
    assert res.predict[-1] <= res.vanilla * 1.1
    # vanilla and record stay flat (no injection there)
    assert abs(res.record - res.vanilla) / res.vanilla < 0.02
