"""Shared fixtures for the benchmark suite.

Benchmarks run the paper's experiments at a reduced rank count (4) so
the whole suite finishes in minutes; each one asserts the paper's
qualitative claim (who wins, by roughly what factor, where crossovers
fall) and prints the regenerated rows under ``-s``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import mpi_record_run

BENCH_RANKS = 4


@pytest.fixture(scope="session")
def recorded_traces(tmp_path_factory):
    """Record-once cache: app name -> (path, record result)."""
    cache: dict[tuple, tuple] = {}
    base = tmp_path_factory.mktemp("traces")

    def get(app: str, ws: str = "small", timestamps: bool = False):
        key = (app, ws, timestamps)
        if key not in cache:
            path = str(base / f"{app}-{ws}.pythia")
            result = mpi_record_run(app, ws, path, ranks=BENCH_RANKS,
                                    seed=0, timestamps=timestamps)
            cache[key] = (path, result)
        return cache[key]

    return get
