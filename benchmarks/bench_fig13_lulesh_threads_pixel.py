"""Fig 13 — Lulesh (size 30) vs maximum thread count on Pixel.

Same protocol as Fig 12 on the 16-core machine; the paper reports a
~20 % improvement at the full thread count.
"""

from __future__ import annotations

from repro.experiments.fig10_13 import fig12_13_thread_sweep, render_omp_sweep
from repro.machines import PIXEL

COUNTS = (1, 2, 4, 8, 12, 16)


def test_fig13_thread_sweep_pixel(benchmark):
    res = benchmark.pedantic(
        lambda: fig12_13_thread_sweep(
            (PIXEL,), size=30, thread_counts={"Pixel": COUNTS}
        )[0],
        rounds=1, iterations=1,
    )
    print("\n" + render_omp_sweep([res], "Fig 13 - Lulesh size 30 vs max threads"))

    for i, n in enumerate(COUNTS):
        if n < 8:
            assert abs(res.predict[i] - res.vanilla[i]) / res.vanilla[i] < 0.15
        elif n == 8:
            assert abs(res.predict[i] - res.vanilla[i]) / res.vanilla[i] < 0.20
    # the full-machine gain is real but smaller than Pudding's 38 %
    assert 8.0 <= res.improvement_pct(len(COUNTS) - 1) <= 40.0
    assert all(p <= v * 1.02 for p, v in zip(res.predict, res.vanilla))
