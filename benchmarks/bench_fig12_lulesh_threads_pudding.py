"""Fig 12 — Lulesh (size 30) vs maximum thread count on Pudding.

Asserted paper shapes: the three configurations coincide at low thread
counts (<= 8); at the full 24 threads PREDICT improves on VANILLA by up
to ~38 %; VANILLA's curve has an interior minimum (more threads stop
helping) while PREDICT stays flat-or-better.
"""

from __future__ import annotations

from repro.experiments.fig10_13 import fig12_13_thread_sweep, render_omp_sweep
from repro.machines import PUDDING

COUNTS = (1, 2, 4, 8, 12, 16, 20, 24)


def test_fig12_thread_sweep_pudding(benchmark):
    res = benchmark.pedantic(
        lambda: fig12_13_thread_sweep(
            (PUDDING,), size=30, thread_counts={"Pudding": COUNTS}
        )[0],
        rounds=1, iterations=1,
    )
    print("\n" + render_omp_sweep([res], "Fig 12 - Lulesh size 30 vs max threads"))

    # low thread counts: all three similar (within a few %)
    for i, n in enumerate(COUNTS):
        if n <= 8:
            assert abs(res.predict[i] - res.vanilla[i]) / res.vanilla[i] < 0.15
    # full machine: the headline gain
    assert 25.0 <= res.improvement_pct(len(COUNTS) - 1) <= 50.0
    # vanilla deteriorates beyond its sweet spot; predict does not
    best_vanilla = min(res.vanilla)
    assert res.vanilla[-1] > best_vanilla * 1.05
    assert res.predict[-1] <= min(res.predict[:-1]) * 1.02
