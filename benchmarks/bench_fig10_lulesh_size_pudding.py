"""Fig 10 — Lulesh execution time vs problem size on Pudding (24 threads).

Asserted paper shapes: RECORD ~= VANILLA; PREDICT beats VANILLA by
roughly 38 % at size 30; the improvement shrinks as the problem grows
(volume regions dominate).
"""

from __future__ import annotations

from repro.experiments.fig10_13 import fig10_11_problem_size_sweep, render_omp_sweep
from repro.machines import PUDDING

SIZES = (10, 20, 30, 40, 50)


def test_fig10_lulesh_size_sweep_pudding(benchmark):
    res = benchmark.pedantic(
        lambda: fig10_11_problem_size_sweep((PUDDING,), sizes=SIZES)[0],
        rounds=1, iterations=1,
    )
    print("\n" + render_omp_sweep([res], "Fig 10 - Lulesh vs problem size"))

    i30 = SIZES.index(30)
    # record ~ vanilla everywhere
    for i in range(len(SIZES)):
        assert abs(res.record[i] - res.vanilla[i]) / res.vanilla[i] < 0.02
    # headline: ~38 % improvement at size 30 (allow 25..50)
    assert 25.0 <= res.improvement_pct(i30) <= 50.0
    # the gain shrinks as the problem grows
    assert res.improvement_pct(0) > res.improvement_pct(i30) > res.improvement_pct(len(SIZES) - 1)
    # predict never loses
    assert all(p <= v * 1.02 for p, v in zip(res.predict, res.vanilla))
