"""Observability overhead: record/predict throughput, metrics off vs on.

Not a paper figure — this guards the instrumentation added to the hot
paths (grammar append in PYTHIA-RECORD, candidate stepping in
PYTHIA-PREDICT).  Both loops batch plain-int bumps and flush to the
registry every few thousand events, so the full metrics pipeline should
cost well under 5% of throughput; the assertion allows 10% to keep the
benchmark robust on noisy CI machines.  Measured numbers are printed
under ``-s`` and the headline figure is documented in the README's
Observability section.

Run with ``pytest benchmarks/bench_obs_overhead.py -s``.
"""

from __future__ import annotations

import statistics
import time

from repro.core.events import EventRegistry
from repro.core.predict import PythiaPredict
from repro.core.record import PythiaRecord
from repro.obs import metrics as obs_metrics

EVENTS = 60_000
REPEATS = 5
#: CI headroom over the documented <5% target
MAX_OVERHEAD = 0.10

#: an NPB-style iteration pattern (8-event loop, two payload variants)
PATTERN = [
    ("post_irecv", 1), ("post_irecv", 2), ("post_isend", 1), ("post_isend", 2),
    ("wait_halo", None), ("compute", None), ("allreduce", "dot"), ("barrier", None),
]


def _stream(n: int) -> list[tuple[str, object]]:
    reps = n // len(PATTERN) + 1
    return (PATTERN * reps)[:n]


def _best_of(fn, repeats: int = REPEATS) -> float:
    """Lowest wall time over ``repeats`` runs (noise-resistant)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best


def _record_run(events) -> None:
    registry = EventRegistry()
    rec = PythiaRecord(registry, record_timestamps=False)
    for name, payload in events:
        rec.record_event(name, payload, None)
    rec.finish()


def _predict_run(grammar, terminals) -> None:
    pred = PythiaPredict(grammar)
    for i, t in enumerate(terminals):
        pred.observe(t)
        if i % 8 == 0:
            pred.predict(1)
    pred.flush_metrics()


def _measure(fn) -> tuple[float, float]:
    """(seconds with metrics off, seconds with metrics on) for ``fn``."""
    prev = obs_metrics.get_registry()
    try:
        obs_metrics.set_registry(obs_metrics.NullRegistry())
        off = _best_of(fn)
        obs_metrics.set_registry(obs_metrics.MetricsRegistry())
        on = _best_of(fn)
    finally:
        obs_metrics.set_registry(prev)
    return off, on


def test_record_overhead_under_bound():
    events = _stream(EVENTS)
    off, on = _measure(lambda: _record_run(events))
    overhead = on / off - 1.0
    print(f"\nrecord: {EVENTS / off:,.0f} ev/s off, {EVENTS / on:,.0f} ev/s on "
          f"-> overhead {100 * overhead:+.1f}%")
    assert overhead < MAX_OVERHEAD


def test_predict_overhead_under_bound():
    events = _stream(EVENTS)
    registry = EventRegistry()
    rec = PythiaRecord(registry, record_timestamps=False)
    for name, payload in events:
        rec.record_event(name, payload, None)
    grammar = rec.finish().grammar
    terminals = [registry.intern_name(name, payload) for name, payload in events]
    off, on = _measure(lambda: _predict_run(grammar, terminals))
    overhead = on / off - 1.0
    print(f"predict: {EVENTS / off:,.0f} ev/s off, {EVENTS / on:,.0f} ev/s on "
          f"-> overhead {100 * overhead:+.1f}%")
    assert overhead < MAX_OVERHEAD


#: flight+drift budget from the issue: <5% (measured target ~2%)
MAX_WATCHER_OVERHEAD = 0.05
#: watcher benchmark: shorter runs, many pairs, several rounds
WATCH_EVENTS = 12_000
WATCH_ROUNDS = 3
WATCH_PAIRS = 20


def _watched_predict_run(grammar, terminals) -> None:
    from repro.obs.drift import DriftMonitor
    from repro.obs.flight import FlightRecorder

    pred = PythiaPredict(grammar)
    pred.attach_flight(FlightRecorder(session="bench", capacity=256))
    pred.attach_drift(DriftMonitor())
    for i, t in enumerate(terminals):
        pred.observe(t)
        if i % 8 == 0:
            pred.predict(1)
    pred.flush_metrics()


def test_flight_and_drift_overhead_under_budget():
    """Flight recorder + drift monitor attached to the hot observe loop
    must stay within the 5% budget (run journaling and the drift EWMA
    refresh are amortized over 32-event strides and stretch to every
    4th stride while calm; measured overhead is typically ~2-3%).

    Measurement: bare and watched loops run in alternating pairs (order
    flipped each iteration, after a warmup of each); a round's figure
    is the *median* of its per-pair overhead ratios, and the asserted
    figure is the smallest median over several independent rounds.
    Within a pair the machine speed is roughly constant, so each ratio
    isolates the watcher cost; the median rejects the pairs a scheduler
    hiccup lands in; and since CPU-frequency drift can only *inflate* a
    whole round, the least-contaminated round estimates the true cost.
    A single global best-of flaps by several percent either way on a
    busy host — see the docstring history of this file.
    """
    events = _stream(WATCH_EVENTS)
    registry = EventRegistry()
    rec = PythiaRecord(registry, record_timestamps=False)
    for name, payload in events:
        rec.record_event(name, payload, None)
    grammar = rec.finish().grammar
    terminals = [registry.intern_name(name, payload) for name, payload in events]
    prev = obs_metrics.get_registry()
    medians = []
    bare_best = watched_best = float("inf")
    try:
        # same metrics backend on both sides: isolate the watcher cost
        obs_metrics.set_registry(obs_metrics.NullRegistry())
        _predict_run(grammar, terminals)  # warm the successor machine
        _watched_predict_run(grammar, terminals)
        for _ in range(WATCH_ROUNDS):
            ratios = []
            for i in range(WATCH_PAIRS):
                if i % 2:
                    t0 = time.perf_counter()
                    _watched_predict_run(grammar, terminals)
                    watched = time.perf_counter() - t0
                    t0 = time.perf_counter()
                    _predict_run(grammar, terminals)
                    bare = time.perf_counter() - t0
                else:
                    t0 = time.perf_counter()
                    _predict_run(grammar, terminals)
                    bare = time.perf_counter() - t0
                    t0 = time.perf_counter()
                    _watched_predict_run(grammar, terminals)
                    watched = time.perf_counter() - t0
                ratios.append(watched / bare - 1.0)
                bare_best = min(bare_best, bare)
                watched_best = min(watched_best, watched)
            medians.append(statistics.median(ratios))
    finally:
        obs_metrics.set_registry(prev)
    overhead = min(medians)
    print(f"flight+drift: {WATCH_EVENTS / bare_best:,.0f} ev/s bare, "
          f"{WATCH_EVENTS / watched_best:,.0f} ev/s watched; round medians "
          f"{', '.join(f'{100 * m:+.1f}%' for m in medians)} "
          f"-> overhead {100 * overhead:+.1f}%")
    assert overhead < MAX_WATCHER_OVERHEAD
