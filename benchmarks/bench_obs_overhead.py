"""Observability overhead: record/predict throughput, metrics off vs on.

Not a paper figure — this guards the instrumentation added to the hot
paths (grammar append in PYTHIA-RECORD, candidate stepping in
PYTHIA-PREDICT).  Both loops batch plain-int bumps and flush to the
registry every few thousand events, so the full metrics pipeline should
cost well under 5% of throughput; the assertion allows 10% to keep the
benchmark robust on noisy CI machines.  Measured numbers are printed
under ``-s`` and the headline figure is documented in the README's
Observability section.

Run with ``pytest benchmarks/bench_obs_overhead.py -s``.
"""

from __future__ import annotations

import statistics
import time

from repro.core.events import EventRegistry
from repro.core.predict import PythiaPredict
from repro.core.record import PythiaRecord
from repro.obs import metrics as obs_metrics

EVENTS = 60_000
REPEATS = 5
#: CI headroom over the documented <5% target
MAX_OVERHEAD = 0.10

#: an NPB-style iteration pattern (8-event loop, two payload variants)
PATTERN = [
    ("post_irecv", 1), ("post_irecv", 2), ("post_isend", 1), ("post_isend", 2),
    ("wait_halo", None), ("compute", None), ("allreduce", "dot"), ("barrier", None),
]


def _stream(n: int) -> list[tuple[str, object]]:
    reps = n // len(PATTERN) + 1
    return (PATTERN * reps)[:n]


def _best_of(fn, repeats: int = REPEATS) -> float:
    """Lowest wall time over ``repeats`` runs (noise-resistant)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best


def _record_run(events) -> None:
    registry = EventRegistry()
    rec = PythiaRecord(registry, record_timestamps=False)
    for name, payload in events:
        rec.record_event(name, payload, None)
    rec.finish()


def _predict_run(grammar, terminals) -> None:
    pred = PythiaPredict(grammar)
    for i, t in enumerate(terminals):
        pred.observe(t)
        if i % 8 == 0:
            pred.predict(1)
    pred.flush_metrics()


def _measure(fn) -> tuple[float, float]:
    """(seconds with metrics off, seconds with metrics on) for ``fn``."""
    prev = obs_metrics.get_registry()
    try:
        obs_metrics.set_registry(obs_metrics.NullRegistry())
        off = _best_of(fn)
        obs_metrics.set_registry(obs_metrics.MetricsRegistry())
        on = _best_of(fn)
    finally:
        obs_metrics.set_registry(prev)
    return off, on


def test_record_overhead_under_bound():
    events = _stream(EVENTS)
    off, on = _measure(lambda: _record_run(events))
    overhead = on / off - 1.0
    print(f"\nrecord: {EVENTS / off:,.0f} ev/s off, {EVENTS / on:,.0f} ev/s on "
          f"-> overhead {100 * overhead:+.1f}%")
    assert overhead < MAX_OVERHEAD


def test_predict_overhead_under_bound():
    events = _stream(EVENTS)
    registry = EventRegistry()
    rec = PythiaRecord(registry, record_timestamps=False)
    for name, payload in events:
        rec.record_event(name, payload, None)
    grammar = rec.finish().grammar
    terminals = [registry.intern_name(name, payload) for name, payload in events]
    off, on = _measure(lambda: _predict_run(grammar, terminals))
    overhead = on / off - 1.0
    print(f"predict: {EVENTS / off:,.0f} ev/s off, {EVENTS / on:,.0f} ev/s on "
          f"-> overhead {100 * overhead:+.1f}%")
    assert overhead < MAX_OVERHEAD


#: flight+drift budget from the issue: <5% (measured target ~2%)
MAX_WATCHER_OVERHEAD = 0.05
#: watcher benchmark: shorter runs, many pairs, several rounds
WATCH_EVENTS = 12_000
WATCH_ROUNDS = 3
WATCH_PAIRS = 20


def _watched_predict_run(grammar, terminals) -> None:
    from repro.obs.drift import DriftMonitor
    from repro.obs.flight import FlightRecorder

    pred = PythiaPredict(grammar)
    pred.attach_flight(FlightRecorder(session="bench", capacity=256))
    pred.attach_drift(DriftMonitor())
    for i, t in enumerate(terminals):
        pred.observe(t)
        if i % 8 == 0:
            pred.predict(1)
    pred.flush_metrics()


def test_flight_and_drift_overhead_under_budget():
    """Flight recorder + drift monitor attached to the hot observe loop
    must stay within the 5% budget (run journaling and the drift EWMA
    refresh are amortized over 32-event strides and stretch to every
    4th stride while calm; measured overhead is typically ~2-3%).

    Measurement: bare and watched loops run in alternating pairs (order
    flipped each iteration, after a warmup of each); a round's figure
    is the *median* of its per-pair overhead ratios, and the asserted
    figure is the smallest median over several independent rounds.
    Within a pair the machine speed is roughly constant, so each ratio
    isolates the watcher cost; the median rejects the pairs a scheduler
    hiccup lands in; and since CPU-frequency drift can only *inflate* a
    whole round, the least-contaminated round estimates the true cost.
    A single global best-of flaps by several percent either way on a
    busy host — see the docstring history of this file.
    """
    events = _stream(WATCH_EVENTS)
    registry = EventRegistry()
    rec = PythiaRecord(registry, record_timestamps=False)
    for name, payload in events:
        rec.record_event(name, payload, None)
    grammar = rec.finish().grammar
    terminals = [registry.intern_name(name, payload) for name, payload in events]
    prev = obs_metrics.get_registry()
    medians = []
    bare_best = watched_best = float("inf")
    try:
        # same metrics backend on both sides: isolate the watcher cost
        obs_metrics.set_registry(obs_metrics.NullRegistry())
        _predict_run(grammar, terminals)  # warm the successor machine
        _watched_predict_run(grammar, terminals)
        for _ in range(WATCH_ROUNDS):
            ratios = []
            for i in range(WATCH_PAIRS):
                if i % 2:
                    t0 = time.perf_counter()
                    _watched_predict_run(grammar, terminals)
                    watched = time.perf_counter() - t0
                    t0 = time.perf_counter()
                    _predict_run(grammar, terminals)
                    bare = time.perf_counter() - t0
                else:
                    t0 = time.perf_counter()
                    _predict_run(grammar, terminals)
                    bare = time.perf_counter() - t0
                    t0 = time.perf_counter()
                    _watched_predict_run(grammar, terminals)
                    watched = time.perf_counter() - t0
                ratios.append(watched / bare - 1.0)
                bare_best = min(bare_best, bare)
                watched_best = min(watched_best, watched)
            medians.append(statistics.median(ratios))
    finally:
        obs_metrics.set_registry(prev)
    overhead = min(medians)
    print(f"flight+drift: {WATCH_EVENTS / bare_best:,.0f} ev/s bare, "
          f"{WATCH_EVENTS / watched_best:,.0f} ev/s watched; round medians "
          f"{', '.join(f'{100 * m:+.1f}%' for m in medians)} "
          f"-> overhead {100 * overhead:+.1f}%")
    assert overhead < MAX_WATCHER_OVERHEAD


#: always-on observability plane budget: the ISSUE's acceptance figure.
#: 19 Hz sampling + 1 Hz history snapshots + 1 Hz rendered scrapes are
#: all off the hot path (background daemon threads), so the measured
#: cost is GIL contention only — typically well under 1%.
MAX_PLANE_OVERHEAD = 0.05
PLANE_EVENTS = 48_000
PLANE_ROUNDS = 3
PLANE_PAIRS = 10


class _AlwaysOnPlane:
    """The daemon's always-on plane: profiler + history + scraper."""

    def __init__(self, registry) -> None:
        self.registry = registry

    def start(self) -> None:
        import threading

        from repro.obs import history as obs_history
        from repro.obs import profiler as obs_profiler

        obs_profiler.enable_profiler(19.0)
        self._history = obs_history.MetricsHistory(self.registry, interval=1.0)
        self._history.start()
        self._stop = threading.Event()

        def scrape_loop() -> None:
            while not self._stop.wait(1.0):
                obs_metrics.render_prometheus(self.registry)

        self._scraper = threading.Thread(
            target=scrape_loop, name="bench-scraper", daemon=True
        )
        self._scraper.start()

    def stop(self) -> None:
        from repro.obs import profiler as obs_profiler

        obs_profiler.disable_profiler()
        self._history.stop()
        self._stop.set()
        self._scraper.join(timeout=2.0)


def test_always_on_plane_overhead_under_budget():
    """Continuous profiling (19 Hz), the metrics history ring (1 Hz)
    and a rendered Prometheus scrape per second must together cost the
    predict hot loop under 5% (same min-of-medians methodology as the
    watcher benchmark; the plane's threads start before and stop after
    each timed run, so only their steady-state interference is
    measured).  The run is sized so the sampler actually fires a few
    times inside every timed window."""
    from repro.obs.profiler import tag_op

    events = _stream(PLANE_EVENTS)
    registry = EventRegistry()
    rec = PythiaRecord(registry, record_timestamps=False)
    for name, payload in events:
        rec.record_event(name, payload, None)
    grammar = rec.finish().grammar
    terminals = [registry.intern_name(name, payload) for name, payload in events]

    prev = obs_metrics.get_registry()
    reg = obs_metrics.MetricsRegistry()
    plane = _AlwaysOnPlane(reg)

    def timed_run() -> float:
        t0 = time.perf_counter()
        with tag_op("bench_predict"):  # the daemon tags every handler
            _predict_run(grammar, terminals)
        return time.perf_counter() - t0

    def run_with_plane() -> float:
        plane.start()
        try:
            return timed_run()
        finally:
            plane.stop()

    try:
        obs_metrics.set_registry(reg)
        timed_run()  # warm the successor machine
        overhead, medians, bare_best, plane_best = _paired_rounds(
            timed_run, run_with_plane, PLANE_ROUNDS, PLANE_PAIRS
        )
    finally:
        obs_metrics.set_registry(prev)
    print(f"\nalways-on plane: {PLANE_EVENTS / bare_best:,.0f} ev/s bare, "
          f"{PLANE_EVENTS / plane_best:,.0f} ev/s with profiler+history+scrape; "
          f"round medians {', '.join(f'{100 * m:+.1f}%' for m in medians)} "
          f"-> overhead {100 * overhead:+.1f}%")
    assert overhead < MAX_PLANE_OVERHEAD


#: context propagation budget: <5% documented; same CI headroom story
#: as MAX_OVERHEAD above.  Asserted against the iteration-grained loop
#: (one 8-event iteration batched per round trip) — the grain the
#: paper's runtime systems drive the oracle at.
MAX_CONTEXT_OVERHEAD = 0.10
#: backstop on the per-event (ping-sized) round trip: tracing is an
#: *absolute* per-request cost, so the microscopic loop is bounded in
#: microseconds, not as a ratio of a denominator this benchmark makes
#: artificially small.  Measured ~5-7µs; the bound only catches a
#: pathological regression (an extra round trip, O(n) accounting).
MAX_CONTEXT_DELTA_US = 25.0
CTX_EVENTS = 800
CTX_ITERS = 100
CTX_ROUNDS = 4
CTX_PAIRS = 12


def _paired_rounds(run_bare, run_traced, rounds: int, pairs: int):
    """min-of-medians overhead plus best times for two workloads.

    Same methodology as the watcher benchmark: traced and untraced
    loops run in alternating pairs, a round's figure is the median
    per-pair ratio, and the reported figure is the smallest median
    across rounds — socket round trips are noisy, and the
    min-of-medians rejects scheduler hiccups without letting
    CPU-frequency drift inflate the result.
    """
    medians = []
    bare_best = traced_best = float("inf")
    for _ in range(rounds):
        ratios = []
        for i in range(pairs):
            if i % 2:
                traced = run_traced()
                bare = run_bare()
            else:
                bare = run_bare()
                traced = run_traced()
            ratios.append(traced / bare - 1.0)
            bare_best = min(bare_best, bare)
            traced_best = min(traced_best, traced)
        medians.append(statistics.median(ratios))
    return min(medians), medians, bare_best, traced_best


def test_context_propagation_overhead_under_budget(tmp_path):
    """Tracing on the daemon path (ctx binding out, srv timing back,
    per-session accounting, client-side decomposition) must stay within
    the <5% budget at the grain runtime systems use the oracle:
    one iteration's events batched per round trip
    (``event_batch_and_predict``), decision asked once per iteration.

    The per-event loop (a ping-sized request per event, ~50µs round
    trips) is also measured, as an *absolute* per-request cost: full
    per-request decomposition costs ~5-7µs of client accounting, reply
    bytes and daemon bookkeeping, which is real money against a
    microscopic denominator (~10-15% of a minimal loopback ping) and
    noise against any request that does real work.  The README's
    Operations section documents both figures; the assert here bounds
    the absolute cost so a pathological regression still fails.
    """
    from repro.core.oracle import Pythia
    from repro.server import OracleServer, PythiaClient, TraceStore

    trace_path = str(tmp_path / "ref.pythia")
    oracle = Pythia(trace_path, mode="record", record_timestamps=False)
    events = _stream(CTX_EVENTS)
    for name, payload in events:
        oracle.event(name, payload)
    oracle.finish()
    sock = str(tmp_path / "oracle.sock")

    def run_events(client) -> float:
        t0 = time.perf_counter()
        for name, payload in events:
            client.event_and_predict(name, payload)
        return time.perf_counter() - t0

    def run_iters(client) -> float:
        t0 = time.perf_counter()
        for _ in range(CTX_ITERS):
            client.event_batch_and_predict(PATTERN)
        return time.perf_counter() - t0

    prev = obs_metrics.get_registry()
    try:
        obs_metrics.set_registry(obs_metrics.MetricsRegistry())
        with OracleServer(sock, store=TraceStore()):
            with PythiaClient(trace_path, socket=sock, context=False) as bare_c, \
                    PythiaClient(trace_path, socket=sock) as traced_c:
                run_events(bare_c)  # warm sessions and the trace cache
                run_events(traced_c)
                overhead, medians, it_bare, it_traced = _paired_rounds(
                    lambda: run_iters(bare_c), lambda: run_iters(traced_c),
                    CTX_ROUNDS, CTX_PAIRS,
                )
                _, ev_medians, ev_bare, ev_traced = _paired_rounds(
                    lambda: run_events(bare_c), lambda: run_events(traced_c),
                    CTX_ROUNDS, CTX_PAIRS,
                )
    finally:
        obs_metrics.set_registry(prev)
    delta_us = (ev_traced - ev_bare) / CTX_EVENTS * 1e6
    print(f"\ncontext (per iteration): {CTX_ITERS / it_bare:,.0f} iter/s "
          f"untraced, {CTX_ITERS / it_traced:,.0f} iter/s traced; round "
          f"medians {', '.join(f'{100 * m:+.1f}%' for m in medians)} "
          f"-> overhead {100 * overhead:+.1f}%")
    print(f"context (per event): {CTX_EVENTS / ev_bare:,.0f} req/s untraced, "
          f"{CTX_EVENTS / ev_traced:,.0f} req/s traced "
          f"({', '.join(f'{100 * m:+.1f}%' for m in ev_medians)}) "
          f"-> +{delta_us:.1f}us per traced request")
    assert overhead < MAX_CONTEXT_OVERHEAD
    assert delta_us < MAX_CONTEXT_DELTA_US
