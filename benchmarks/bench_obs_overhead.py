"""Observability overhead: record/predict throughput, metrics off vs on.

Not a paper figure — this guards the instrumentation added to the hot
paths (grammar append in PYTHIA-RECORD, candidate stepping in
PYTHIA-PREDICT).  Both loops batch plain-int bumps and flush to the
registry every few thousand events, so the full metrics pipeline should
cost well under 5% of throughput; the assertion allows 10% to keep the
benchmark robust on noisy CI machines.  Measured numbers are printed
under ``-s`` and the headline figure is documented in the README's
Observability section.

Run with ``pytest benchmarks/bench_obs_overhead.py -s``.
"""

from __future__ import annotations

import time

from repro.core.events import EventRegistry
from repro.core.predict import PythiaPredict
from repro.core.record import PythiaRecord
from repro.obs import metrics as obs_metrics

EVENTS = 60_000
REPEATS = 5
#: CI headroom over the documented <5% target
MAX_OVERHEAD = 0.10

#: an NPB-style iteration pattern (8-event loop, two payload variants)
PATTERN = [
    ("post_irecv", 1), ("post_irecv", 2), ("post_isend", 1), ("post_isend", 2),
    ("wait_halo", None), ("compute", None), ("allreduce", "dot"), ("barrier", None),
]


def _stream(n: int) -> list[tuple[str, object]]:
    reps = n // len(PATTERN) + 1
    return (PATTERN * reps)[:n]


def _best_of(fn, repeats: int = REPEATS) -> float:
    """Lowest wall time over ``repeats`` runs (noise-resistant)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best


def _record_run(events) -> None:
    registry = EventRegistry()
    rec = PythiaRecord(registry, record_timestamps=False)
    for name, payload in events:
        rec.record_event(name, payload, None)
    rec.finish()


def _predict_run(grammar, terminals) -> None:
    pred = PythiaPredict(grammar)
    for i, t in enumerate(terminals):
        pred.observe(t)
        if i % 8 == 0:
            pred.predict(1)
    pred.flush_metrics()


def _measure(fn) -> tuple[float, float]:
    """(seconds with metrics off, seconds with metrics on) for ``fn``."""
    prev = obs_metrics.get_registry()
    try:
        obs_metrics.set_registry(obs_metrics.NullRegistry())
        off = _best_of(fn)
        obs_metrics.set_registry(obs_metrics.MetricsRegistry())
        on = _best_of(fn)
    finally:
        obs_metrics.set_registry(prev)
    return off, on


def test_record_overhead_under_bound():
    events = _stream(EVENTS)
    off, on = _measure(lambda: _record_run(events))
    overhead = on / off - 1.0
    print(f"\nrecord: {EVENTS / off:,.0f} ev/s off, {EVENTS / on:,.0f} ev/s on "
          f"-> overhead {100 * overhead:+.1f}%")
    assert overhead < MAX_OVERHEAD


def test_predict_overhead_under_bound():
    events = _stream(EVENTS)
    registry = EventRegistry()
    rec = PythiaRecord(registry, record_timestamps=False)
    for name, payload in events:
        rec.record_event(name, payload, None)
    grammar = rec.finish().grammar
    terminals = [registry.intern_name(name, payload) for name, payload in events]
    off, on = _measure(lambda: _predict_run(grammar, terminals))
    overhead = on / off - 1.0
    print(f"predict: {EVENTS / off:,.0f} ev/s off, {EVENTS / on:,.0f} ev/s on "
          f"-> overhead {100 * overhead:+.1f}%")
    assert overhead < MAX_OVERHEAD
