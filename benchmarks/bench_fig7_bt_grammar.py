"""Fig 7 — the grammar extracted from BT.

Regenerates the figure's content (one rank's grammar) and asserts the
paper's structure: a 200-iteration loop rule containing the halo rule,
Bcast^6 at the start, the Allreduce/Reduce/Barrier tail.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_RANKS
from repro.experiments.fig7 import fig7_bt_grammar


def test_fig7_bt_grammar_structure(benchmark):
    grammar_text = benchmark.pedantic(
        lambda: fig7_bt_grammar(ws="small", ranks=BENCH_RANKS, rank=1),
        rounds=1, iterations=1,
    )
    print("\nFig 7: grammar extracted from BT\n" + grammar_text)
    # the paper's Fig 7 shape
    assert "Bcast(0)^6" in grammar_text
    assert "^200" in grammar_text  # the 200-iteration main loop
    assert "Waitall" in grammar_text
    assert "Wait^2" in grammar_text
    assert grammar_text.count("->") == 3  # R + two rules, as in the paper
