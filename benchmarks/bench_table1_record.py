"""Table I — PYTHIA-RECORD overhead, event counts and grammar sizes.

Regenerates the table's rows for all 13 applications and benchmarks the
record-mode execution.  The paper's claim: recording does not
significantly impact performance (overhead within a few percent), event
counts span orders of magnitude, regular applications yield tiny
grammars while AMG/Quicksilver yield large ones.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_RANKS
from repro.apps.base import APPS, get_app
from repro.experiments.harness import mpi_record_run, mpi_vanilla_run, temp_trace_path
from repro.experiments.table1 import Table1Row, render_table1


@pytest.mark.parametrize("app", sorted(APPS))
def test_table1_row(benchmark, app, tmp_path):
    """One Table I row: vanilla vs record time, events, rules."""
    ws = "small"
    vanilla = mpi_vanilla_run(app, ws, ranks=BENCH_RANKS, seed=0)
    path = str(tmp_path / f"{app}.pythia")

    def record_run():
        import os

        if os.path.exists(path):
            os.unlink(path)
        return mpi_record_run(app, ws, path, ranks=BENCH_RANKS, seed=0)

    record = benchmark.pedantic(record_run, rounds=1, iterations=1)

    row = Table1Row(app=f"{app.upper()}.{ws}", vanilla_s=vanilla.time,
                    record_s=record.time, events=record.events,
                    rules=record.rules_per_rank)
    print("\n" + render_table1([row]))

    # the paper's claim: recording does not significantly alter runtime
    assert abs(row.overhead_pct) < 5.0
    assert record.events > 0
    spec = get_app(app)
    if spec.paper.get("rules", 0) <= 3:
        # regular applications stay regular here too
        assert record.rules_per_rank <= 6


def test_table1_rule_ordering(benchmark):
    """Quicksilver/AMG must be the most irregular grammars (paper shape)."""

    def measure():
        rules = {}
        for app in ("bt", "ep", "quicksilver", "amg"):
            path = temp_trace_path(f"t1-{app}")
            try:
                rules[app] = mpi_record_run(
                    app, "small", path, ranks=BENCH_RANKS, seed=0
                ).rules_per_rank
            finally:
                import os

                if os.path.exists(path):
                    os.unlink(path)
        return rules

    rules = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert rules["ep"] <= rules["bt"] < rules["amg"] < rules["quicksilver"]
