"""Fig 11 — Lulesh execution time vs problem size on Pixel (16 threads).

Same protocol as Fig 10 on the smaller machine; the paper reports a
smaller peak improvement (~20 % at size 30) because fewer threads mean
less synchronisation overhead to save.
"""

from __future__ import annotations

from repro.experiments.fig10_13 import fig10_11_problem_size_sweep, render_omp_sweep
from repro.machines import PIXEL, PUDDING

SIZES = (10, 20, 30, 40, 50)


def test_fig11_lulesh_size_sweep_pixel(benchmark):
    res = benchmark.pedantic(
        lambda: fig10_11_problem_size_sweep((PIXEL,), sizes=SIZES)[0],
        rounds=1, iterations=1,
    )
    print("\n" + render_omp_sweep([res], "Fig 11 - Lulesh vs problem size"))

    i30 = SIZES.index(30)
    for i in range(len(SIZES)):
        assert abs(res.record[i] - res.vanilla[i]) / res.vanilla[i] < 0.02
    # improvement exists but is noticeably smaller than Pudding's
    assert 8.0 <= res.improvement_pct(i30) <= 40.0
    assert res.improvement_pct(0) > res.improvement_pct(len(SIZES) - 1)


def test_fig10_vs_fig11_pudding_gains_more(benchmark):
    pud, pix = benchmark.pedantic(
        lambda: fig10_11_problem_size_sweep((PUDDING, PIXEL), sizes=(30,)),
        rounds=1, iterations=1,
    )
    print(f"\nsize-30 gain: Pudding {pud.improvement_pct(0):.1f} % "
          f"vs Pixel {pix.improvement_pct(0):.1f} %")
    assert pud.improvement_pct(0) > pix.improvement_pct(0)
