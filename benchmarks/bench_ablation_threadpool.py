"""Ablation — the paper's GOMP thread-pool modification (§III-D1).

"In order to reduce the overhead of creating and destroying threads
when the number of OpenMP threads varies, we have made the spurious
threads wait until they are needed again."

This ablation runs the PYTHIA-adaptive Lulesh configuration with the
modified pool (**park**) against default GOMP behaviour (**destroy**):
without the modification, every team-size change thrashes
destroy/spawn and eats a large share of the adaptive win — which is why
the paper needed the change at all.
"""

from __future__ import annotations

import os

from repro.apps.lulesh_omp import lulesh_omp_run
from repro.core.oracle import Pythia
from repro.experiments.harness import omp_record_run, temp_trace_path
from repro.machines import PUDDING
from repro.openmp.costmodel import RegionCostModel
from repro.openmp.policies import AdaptivePythiaPolicy, MaxThreadsPolicy
from repro.openmp.runtime import GompRuntime
from repro.runtime.omp_interpose import OMPRuntimeSystem

SIZE = 30


def adaptive_time(trace_path: str, pool_mode: str) -> tuple[float, dict]:
    oracle = Pythia(trace_path, mode="predict")
    shim = OMPRuntimeSystem(oracle)
    rt = GompRuntime(
        PUDDING,
        max_threads=PUDDING.cores,
        policy=AdaptivePythiaPolicy(
            cost_model=RegionCostModel(PUDDING), max_threads=PUDDING.cores
        ),
        pool_mode=pool_mode,
        interceptor=shim,
    )
    t = lulesh_omp_run(rt, SIZE)
    return t, dict(rt.pool.stats)


def test_ablation_park_vs_destroy(benchmark):
    path = temp_trace_path("ablation")
    try:
        omp_record_run(PUDDING, SIZE, path)
        park_t, park_stats = benchmark.pedantic(
            lambda: adaptive_time(path, "park"), rounds=1, iterations=1
        )
        destroy_t, destroy_stats = adaptive_time(path, "destroy")
    finally:
        if os.path.exists(path):
            os.unlink(path)

    vanilla_t = GompRuntime(PUDDING, max_threads=PUDDING.cores,
                            policy=MaxThreadsPolicy())
    from repro.apps.lulesh_omp import lulesh_omp_run as run

    vanilla = run(vanilla_t, SIZE)

    print(f"\nAblation (Lulesh s={SIZE}, Pudding, adaptive policy):")
    print(f"  vanilla (max threads)        : {vanilla:7.2f} s")
    print(f"  adaptive + park pool (paper) : {park_t:7.2f} s  "
          f"({park_stats['wakes']} wakes, {park_stats['spawns']} spawns)")
    print(f"  adaptive + destroy pool      : {destroy_t:7.2f} s  "
          f"({destroy_stats['destroys']} destroys, {destroy_stats['spawns']} spawns)")

    # the paper's modification matters: the destroy pool erodes the win
    assert park_t < destroy_t
    # without parking, spawn/destroy churn happens constantly
    assert destroy_stats["spawns"] > park_stats["spawns"] * 10
    # and the parked pool keeps nearly the whole adaptive advantage
    assert park_t < vanilla * 0.75
