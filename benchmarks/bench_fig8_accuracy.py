"""Fig 8 — accuracy of PYTHIA-PREDICT predictions vs distance.

Record on the small working set, predict small/medium/large, distances
1..128.  Asserted paper shapes: regular applications stay >=90 % at
distance 128; Quicksilver sits near 70 % at distance 1 and decays; LU
degrades across working sets at long distances (loop boundaries).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_RANKS
from repro.experiments.fig8 import fig8_accuracy, render_fig8

DISTANCES = (1, 2, 4, 8, 16, 32, 64, 128)

REGULAR_APPS = ("bt", "sp", "minife")
SHORT_TRACE_APPS = ("ft", "is")  # tens of events/rank: distance 128 outruns the trace


@pytest.mark.parametrize("app", REGULAR_APPS)
def test_fig8_regular_apps_stay_accurate(benchmark, app):
    res = benchmark.pedantic(
        lambda: fig8_accuracy([app], distances=DISTANCES, ranks=BENCH_RANKS),
        rounds=1, iterations=1,
    )[0]
    print("\n" + render_fig8([res]))
    for ws, curve in res.curves.items():
        assert curve[-1] >= 0.85, f"{app}.{ws} fell below 85% at distance 128"
    assert res.curves["small"][-1] >= 0.90


@pytest.mark.parametrize("app", SHORT_TRACE_APPS)
def test_fig8_short_trace_apps_accurate_at_short_distance(benchmark, app):
    """FT/IS record only tens of events per rank (Table I), so long
    distances outrun the reference trace; short distances stay accurate."""
    res = benchmark.pedantic(
        lambda: fig8_accuracy([app], distances=(1, 2, 4), ranks=BENCH_RANKS),
        rounds=1, iterations=1,
    )[0]
    print("\n" + render_fig8([res]))
    for _ws, curve in res.curves.items():
        assert curve[0] >= 0.75


def test_fig8_quicksilver_irregular(benchmark):
    res = benchmark.pedantic(
        lambda: fig8_accuracy(["quicksilver"], distances=DISTANCES, ranks=BENCH_RANKS),
        rounds=1, iterations=1,
    )[0]
    print("\n" + render_fig8([res]))
    for ws, curve in res.curves.items():
        assert curve[0] >= 0.5, "short-distance accuracy collapsed"
        assert curve[-1] <= 0.6, "long-distance prediction should fail on QS"


def test_fig8_lu_degrades_across_working_sets(benchmark):
    res = benchmark.pedantic(
        lambda: fig8_accuracy(["lu"], distances=DISTANCES, ranks=BENCH_RANKS),
        rounds=1, iterations=1,
    )[0]
    print("\n" + render_fig8([res]))
    # same working set: accurate; larger working sets: loop boundaries
    # break long-distance predictions (the paper's LU/MG observation)
    assert res.curves["small"][-1] >= 0.85
    assert res.curves["large"][-1] <= res.curves["small"][-1] - 0.2
