"""Fault-layer cost: reconnect/resync latency and fallback switchover.

Not a paper figure — this measures the fault-tolerance layer of the
oracle service.  Two costs matter to a host application:

- **reconnect + resync**: after a daemon restart, the first request
  pays one connect, one ``open_session`` and an ``observe_batch``
  replay of the client's event ring.  Measured per ring depth — the
  replay is the dominant term and scales linearly, which is the reason
  ``resync_window`` is a knob and not a constant.
- **fallback switchover**: with the daemon permanently unreachable,
  the first request burns the whole retry budget and then seeds the
  in-process fallback.  That cost is paid once; the steady degraded
  request is in-process speed.

Asserted shapes: post-restart recovery stays under a second for every
measured ring depth (immediate restart, first reconnect attempt
succeeds), and the degraded steady state serves predictions with no
daemon at all.

Run with ``pytest benchmarks/bench_fault_recovery.py --benchmark-only -s``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.oracle import Pythia
from repro.server import OracleServer, PythiaClient, RetryPolicy, TraceStore

RING_DEPTHS = (16, 64, 256)

#: immediate-restart scenario: the first reconnect attempt succeeds
EAGER = RetryPolicy(max_retries=10, backoff_base=0.01, backoff_cap=0.1,
                    jitter=0.0, deadline=30.0)


@pytest.fixture(scope="module")
def loop_trace(tmp_path_factory):
    """A loop-structured synthetic trace and its full event stream."""
    path = str(tmp_path_factory.mktemp("trace") / "solver.pythia")
    body = [("a", None), ("b", 1), ("c", None), ("b", 2)]
    seq = ([("prologue", None)] + body * 10 + [("epilogue", None)]) * 40
    oracle = Pythia(path, mode="record", record_timestamps=False)
    for name, payload in seq:
        oracle.event(name, payload)
    oracle.finish()
    return path, seq


@pytest.mark.parametrize("depth", RING_DEPTHS)
def test_reconnect_resync_latency(benchmark, loop_trace, tmp_path, depth):
    """First request after a daemon restart: connect + session + replay."""
    trace_path, seq = loop_trace
    sock = str(tmp_path / "oracle.sock")
    server = OracleServer(sock, store=TraceStore(capacity=4)).start()
    client = PythiaClient(
        trace_path, socket=sock, retry=EAGER, resync_window=depth
    )
    stream = iter(seq * 50)
    for _ in range(depth):  # fill the ring
        client.event(*next(stream))

    def restart_daemon():
        nonlocal server
        server.stop()
        server = OracleServer(sock, store=TraceStore(capacity=4)).start()
        return (), {}

    def first_request_after_restart():
        matched = client.event(*next(stream))
        return matched

    elapsed = benchmark.pedantic(
        first_request_after_restart, setup=restart_daemon,
        rounds=5, iterations=1,
    )
    del elapsed
    recovery = benchmark.stats.stats.mean
    print(f"\nring depth {depth:4d}: {recovery * 1e3:7.2f} ms "
          f"reconnect+resync ({client.counters['reconnects']} reconnects)")
    assert recovery < 1.0  # immediate restart: recovery is sub-second
    assert client.counters["reconnects"] >= 5
    assert not client.degraded
    client.finish()
    server.stop()


def test_fallback_switchover_and_steady_state(loop_trace, tmp_path):
    """Daemon never up: one-time switchover cost, then in-process speed."""
    trace_path, seq = loop_trace
    client = PythiaClient(
        trace_path, socket=str(tmp_path / "never.sock"),
        retry=RetryPolicy(max_retries=3, backoff_base=0.005, backoff_cap=0.02,
                          jitter=0.0, deadline=5.0),
        fallback="local",
    )
    t0 = time.perf_counter()
    client.event(*seq[0])
    switchover = time.perf_counter() - t0
    assert client.degraded and client.counters["fallbacks"] == 1

    t0 = time.perf_counter()
    for name, payload in seq[1:401]:
        client.event_and_predict(name, payload, distance=4)
    steady = (time.perf_counter() - t0) / 400
    print(f"\nfallback switchover: {switchover * 1e3:.2f} ms once, then "
          f"{steady * 1e6:.1f} us/event_and_predict in-process")
    assert steady < switchover  # the budget is burned exactly once
    client.finish()
