"""Fig 9 — cost of one PYTHIA-PREDICT prediction vs distance.

This is the natural pytest-benchmark target: the real wall-clock cost
of ``predict(distance)``.  Asserted paper shapes: cost grows roughly
linearly with the distance, and irregular grammars (Quicksilver) are
more expensive than regular ones (BT).
"""

from __future__ import annotations

import pytest

from repro.core.predict import PythiaPredict

DISTANCES = (1, 4, 16, 64)


def _predictor(recorded_traces, app):
    _path, record = recorded_traces(app, "small")
    tt = record.trace.thread(1)
    p = PythiaPredict(tt.grammar, tt.timing)
    stream = tt.grammar.unfold()
    for ev in stream[:64]:
        p.observe(ev)
    return p


@pytest.mark.parametrize("distance", DISTANCES)
@pytest.mark.parametrize("app", ("bt", "quicksilver"))
def test_fig9_prediction_cost(benchmark, recorded_traces, app, distance):
    predictor = _predictor(recorded_traces, app)
    benchmark(predictor.predict, distance)


def test_fig9_cost_grows_with_distance(benchmark, recorded_traces):
    import time

    predictor = _predictor(recorded_traces, "bt")

    def cost(d, repeats=50):
        t0 = time.perf_counter()
        for _ in range(repeats):
            predictor.predict(d)
        return (time.perf_counter() - t0) / repeats

    c1, c64 = benchmark.pedantic(lambda: (cost(1), cost(64)), rounds=1, iterations=1)
    print(f"\nFig 9 shape: predict(1)={c1 * 1e6:.1f}us predict(64)={c64 * 1e6:.1f}us")
    assert c64 > c1 * 4  # roughly linear growth in distance


def test_fig9_irregular_apps_cost_more(benchmark, recorded_traces):
    import time

    def mean_cost(app, d=16, repeats=30):
        p = _predictor(recorded_traces, app)
        t0 = time.perf_counter()
        for _ in range(repeats):
            p.predict(d)
        return (time.perf_counter() - t0) / repeats

    bt, qs = benchmark.pedantic(
        lambda: (mean_cost("bt"), mean_cost("quicksilver")), rounds=1, iterations=1
    )
    print(f"\nFig 9 shape: BT={bt * 1e6:.1f}us QS={qs * 1e6:.1f}us at distance 16")
    assert qs > bt
