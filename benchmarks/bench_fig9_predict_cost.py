"""Fig 9 — cost of one PYTHIA-PREDICT prediction vs distance.

This is the natural pytest-benchmark target: the real wall-clock cost
of ``predict(distance)``.  Asserted paper shapes: cost grows roughly
linearly with the distance, and irregular grammars (Quicksilver) are
more expensive than regular ones (BT).

Since the compiled successor machine landed, the file also benchmarks
the compiled tracker against the uncached reference path, and doubles
as a standalone smoke benchmark::

    PYTHONPATH=src python benchmarks/bench_fig9_predict_cost.py --out BENCH_predict.json

writes per-distance costs (µs), observe / fused-loop throughput, cache
hit rates and the speedups against the pre-machine ``results/fig9.txt``
numbers, for a small BT and LULESH workload.  CI runs exactly that and
archives the JSON.
"""

from __future__ import annotations

import argparse
import json
import time

import pytest

from repro.core.predict import PythiaPredict

DISTANCES = (1, 4, 16, 64)

#: pre-successor-machine costs from results/fig9.txt (µs per predict)
BASELINE_US = {
    "bt": {1: 5.4, 4: 20.0, 16: 82.5, 64: 333.5},
    "lulesh": {1: 9.6, 4: 30.9, 16: 128.3, 64: 358.4},
}

#: acceptance floors: compiled predict must beat the fig9 baseline by
#: at least this much (the PR targets 3x at distance 1, 2x at 64)
SPEEDUP_FLOOR = {1: 3.0, 64: 2.0}


def _predictor(recorded_traces, app, *, compiled=True):
    _path, record = recorded_traces(app, "small")
    tt = record.trace.thread(1)
    p = PythiaPredict(tt.grammar, tt.timing, compiled=compiled)
    stream = tt.grammar.unfold()
    for ev in stream[:64]:
        p.observe(ev)
    return p


@pytest.mark.parametrize("distance", DISTANCES)
@pytest.mark.parametrize("app", ("bt", "quicksilver"))
def test_fig9_prediction_cost(benchmark, recorded_traces, app, distance):
    predictor = _predictor(recorded_traces, app)
    benchmark(predictor.predict, distance)


@pytest.mark.parametrize("distance", (1, 64))
@pytest.mark.parametrize("app", ("bt", "quicksilver"))
def test_fig9_reference_prediction_cost(benchmark, recorded_traces, app, distance):
    """The uncached traversal, for the compiled-vs-reference comparison."""
    predictor = _predictor(recorded_traces, app, compiled=False)
    benchmark(predictor.predict, distance)


def test_fig9_cost_grows_with_distance(benchmark, recorded_traces):
    predictor = _predictor(recorded_traces, "bt", compiled=False)

    def cost(d, repeats=50):
        t0 = time.perf_counter()
        for _ in range(repeats):
            predictor.predict(d)
        return (time.perf_counter() - t0) / repeats

    c1, c64 = benchmark.pedantic(lambda: (cost(1), cost(64)), rounds=1, iterations=1)
    print(f"\nFig 9 shape: predict(1)={c1 * 1e6:.1f}us predict(64)={c64 * 1e6:.1f}us")
    assert c64 > c1 * 4  # roughly linear growth in distance


def test_fig9_irregular_apps_cost_more(benchmark, recorded_traces):
    def mean_cost(app, d=16, repeats=30):
        p = _predictor(recorded_traces, app, compiled=False)
        t0 = time.perf_counter()
        for _ in range(repeats):
            p.predict(d)
        return (time.perf_counter() - t0) / repeats

    bt, qs = benchmark.pedantic(
        lambda: (mean_cost("bt"), mean_cost("quicksilver")), rounds=1, iterations=1
    )
    print(f"\nFig 9 shape: BT={bt * 1e6:.1f}us QS={qs * 1e6:.1f}us at distance 16")
    assert qs > bt


def test_compiled_beats_reference(benchmark, recorded_traces):
    """Acceptance: the machine wins at short and long distance."""

    def costs():
        out = {}
        for compiled in (False, True):
            p = _predictor(recorded_traces, "bt", compiled=compiled)
            for d in (1, 64):
                for _ in range(10):
                    p.predict(d)  # warm
                repeats = 500 if d == 1 else 50
                t0 = time.perf_counter()
                for _ in range(repeats):
                    p.predict(d)
                out[(compiled, d)] = (time.perf_counter() - t0) / repeats
        return out

    out = benchmark.pedantic(costs, rounds=1, iterations=1)
    print(
        "\nCompiled vs reference (BT): "
        f"d1 {out[(False, 1)] * 1e6:.2f}->{out[(True, 1)] * 1e6:.2f}us, "
        f"d64 {out[(False, 64)] * 1e6:.1f}->{out[(True, 64)] * 1e6:.1f}us"
    )
    assert out[(True, 1)] < out[(False, 1)]
    assert out[(True, 64)] < out[(False, 64)]


# ----------------------------------------------------------------------
# standalone smoke mode (CI: emits BENCH_predict.json)
# ----------------------------------------------------------------------


def _bench_app(app: str, distances=DISTANCES) -> dict:
    """Record a small workload and measure the tracker both ways."""
    import os
    import tempfile

    from repro.experiments.harness import mpi_record_run

    with tempfile.TemporaryDirectory() as tmp:
        record = mpi_record_run(
            app, "small", os.path.join(tmp, "ref.pythia"), ranks=4, seed=0,
            timestamps=True,
        )
    tt = record.trace.thread(1)
    stream = tt.grammar.unfold()

    def tracker(compiled):
        p = PythiaPredict(tt.grammar, tt.timing, compiled=compiled)
        for ev in stream[:64]:
            p.observe(ev)
        return p

    result: dict = {
        "events": len(stream),
        "rules": tt.grammar.rule_count,
        "predict_us": {},
        "speedup_vs_reference": {},
        "speedup_vs_fig9": {},
    }
    reference, compiled = tracker(False), tracker(True)
    for d in distances:
        per = {}
        for label, p in (("reference", reference), ("compiled", compiled)):
            for _ in range(10):
                p.predict(d)  # warm cache and allocator
            repeats = max(50, 2000 // d)
            t0 = time.perf_counter()
            for _ in range(repeats):
                p.predict(d)
            per[label] = (time.perf_counter() - t0) / repeats * 1e6
        result["predict_us"][str(d)] = {k: round(v, 3) for k, v in per.items()}
        result["speedup_vs_reference"][str(d)] = round(per["reference"] / per["compiled"], 2)
        baseline = BASELINE_US.get(app, {}).get(d)
        if baseline is not None:
            result["speedup_vs_fig9"][str(d)] = round(baseline / per["compiled"], 2)

    # steady-state observe: a fresh tracker over the full stream, on the
    # machine the trackers above already warmed (the daemon scenario —
    # every new session rides the shared cache)
    t0 = time.perf_counter()
    p = PythiaPredict(tt.grammar, tt.timing, compiled=False)
    for ev in stream:
        p.observe(ev)
    ref_obs = (time.perf_counter() - t0) / len(stream) * 1e6
    p = PythiaPredict(tt.grammar, tt.timing, compiled=True)
    for ev in stream:
        p.observe(ev)  # warm-up pass: populate the shared machine
    t0 = time.perf_counter()
    p = PythiaPredict(tt.grammar, tt.timing, compiled=True)
    for ev in stream:
        p.observe(ev)
    warm_obs = (time.perf_counter() - t0) / len(stream) * 1e6
    result["observe_us_per_event"] = {
        "reference": round(ref_obs, 3),
        "compiled_warm": round(warm_obs, 3),
    }
    result["observe_speedup"] = round(ref_obs / warm_obs, 2)

    # the fused runtime-system loop: observe + distance-1 predict per event
    p = PythiaPredict(tt.grammar, tt.timing, compiled=True)
    t0 = time.perf_counter()
    for ev in stream:
        p.observe_and_predict(ev, 1)
    result["fused_observe_predict_us_per_event"] = round(
        (time.perf_counter() - t0) / len(stream) * 1e6, 3
    )

    cache = tt.grammar.machine().stats()
    lookups = cache["hits"] + cache["misses"] + cache["det_hits"]
    result["cache"] = {
        "entries": cache["entries"],
        "expand_hit_rate": round(cache["hit_rate"], 4),
        "det_hits": cache["det_hits"],
        # overall: det fast-path hits count as cache hits too
        "hit_rate": round((cache["hits"] + cache["det_hits"]) / lookups, 4)
        if lookups
        else 0.0,
        "evictions": cache["evictions"],
    }
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_predict.json", help="output JSON path")
    parser.add_argument("--apps", nargs="+", default=["bt", "lulesh"])
    args = parser.parse_args(argv)

    report = {"workload": "small, 4 ranks, thread 1", "apps": {}}
    failures = []
    for app in args.apps:
        print(f"benchmarking {app} ...", flush=True)
        result = _bench_app(app)
        report["apps"][app] = result
        for d, floor in SPEEDUP_FLOOR.items():
            got = result["speedup_vs_fig9"].get(str(d))
            if got is not None and got < floor:
                failures.append(f"{app}: {got}x at distance {d} (< {floor}x floor)")
        line = ", ".join(
            f"d{d}={v['compiled']}us ({result['speedup_vs_reference'][d]}x ref)"
            for d, v in result["predict_us"].items()
        )
        print(
            f"  {line}; observe {result['observe_us_per_event']['compiled_warm']}us/ev "
            f"({result['observe_speedup']}x), "
            f"fused {result['fused_observe_predict_us_per_event']}us/ev"
        )
    report["speedup_floors"] = {str(k): v for k, v in SPEEDUP_FLOOR.items()}
    report["ok"] = not failures
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if failures:
        print("speedup floors missed:")
        for f in failures:
            print(f"  {f}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
