"""Oracle-service throughput: predictions/second vs concurrent sessions.

Not a paper figure — this measures the new daemon subsystem alongside
the figure benchmarks: one `OracleServer` on a Unix socket, N client
threads each running an observe/predict loop over the same recorded BT
trace.  Asserted shapes: the daemon survives 16 concurrent sessions
without a single error, aggregate throughput does not collapse as
sessions are added, and every session shares the single cached trace
load (the point of the shared store).

Run with ``pytest benchmarks/bench_server_throughput.py --benchmark-only -s``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.oracle import Pythia
from repro.server import OracleServer, PythiaClient, TraceStore

SESSIONS = (1, 4, 16)
STEPS = 150  # observe/predict pairs per session


@pytest.fixture(scope="module")
def service(recorded_traces, tmp_path_factory):
    """One daemon over one recorded BT trace, shared by all rounds."""
    trace_path, _ = recorded_traces("bt", "small", True)
    sock = str(tmp_path_factory.mktemp("srv") / "oracle.sock")
    with OracleServer(sock, store=TraceStore(capacity=4)) as server:
        trace = Pythia(trace_path, mode="predict").reference
        registry = trace.registry
        events = [
            (registry.event(t).name, registry.event(t).payload)
            for t in trace.threads[0].grammar.unfold()[:STEPS]
        ]
        yield server, trace_path, events


def run_sessions(n: int, trace_path: str, sock: str, events) -> float:
    """N concurrent observe/predict loops; returns predictions/second."""
    errors: list[Exception] = []
    barrier = threading.Barrier(n + 1)

    def session():
        try:
            client = PythiaClient(trace_path, socket=sock)
            barrier.wait()  # start all sessions together
            for name, payload in events:
                client.event(name, payload)
                client.predict(4)
            client.finish()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=session) for _ in range(n)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    assert not errors, errors[:3]
    return n * len(events) / elapsed


@pytest.mark.parametrize("sessions", SESSIONS)
def test_throughput_by_session_count(benchmark, service, sessions):
    server, trace_path, events = service

    rate = benchmark.pedantic(
        run_sessions,
        args=(sessions, trace_path, server.socket_path, events),
        rounds=3,
        iterations=1,
    )
    print(f"\n{sessions:2d} session(s): {rate:,.0f} predictions/s")


def test_concurrency_does_not_collapse_throughput(service):
    """16 sessions must beat 1 session's aggregate rate (shared daemon,
    not a serialized bottleneck) — with generous slack for CI noise."""
    server, trace_path, events = service
    r1 = max(run_sessions(1, trace_path, server.socket_path, events) for _ in range(2))
    r16 = max(run_sessions(16, trace_path, server.socket_path, events) for _ in range(2))
    print(f"\naggregate: 1 session {r1:,.0f}/s vs 16 sessions {r16:,.0f}/s")
    assert r16 > r1 * 0.8  # adding sessions must not serialize to < 1x

    stats = server.store.snapshot()
    assert stats["misses"] == 1  # every session shared one trace load
    assert server.counters["connections_dropped"] == 0
