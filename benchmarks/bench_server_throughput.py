"""Oracle-service throughput: predictions/second vs concurrent sessions.

Not a paper figure — this measures the new daemon subsystem alongside
the figure benchmarks: one `OracleServer` on a Unix socket, N client
threads each running an observe/predict loop over the same recorded BT
trace.  Asserted shapes: the daemon survives 16 concurrent sessions
without a single error, aggregate throughput does not collapse as
sessions are added, and every session shares the single cached trace
load (the point of the shared store).

Alongside the headline rate, each run folds the clients' per-component
latency digests (wire/queue/handler, from the ``srv`` reply timing)
into one table per op — the baseline ROADMAP item 1 (a multi-worker
daemon) is measured against: queue time is exactly the slice a worker
pool would claw back, handler time is the floor it cannot touch.

Run with ``pytest benchmarks/bench_server_throughput.py --benchmark-only -s``;
run standalone (``python benchmarks/bench_server_throughput.py``) to
emit ``BENCH_server.json``, the committed baseline.  Add ``--workers 4``
to also measure the multi-worker supervisor: sessions driven from
separate load-generator *processes* (client threads would share one GIL
and cap the aggregate), 64-session rounds against both a single-process
daemon and the N-worker tier, with scaling floors enforced on runners
that have at least 4 cores.
"""

from __future__ import annotations

import argparse
import threading
import time

import pytest

from repro.core.oracle import Pythia
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import LATENCY_BUCKETS_S, Histogram
from repro.server import OracleServer, PythiaClient, TraceStore

SESSIONS = (1, 4, 16)
STEPS = 150  # observe/predict pairs per session

#: standalone mode fails if 16 sessions fall below this fraction of the
#: single-session aggregate rate — same shape floor the pytest variant
#: asserts (absolute rates are machine-dependent; the scaling shape is
#: not)
MIN_SCALING = 0.8

#: the protocol-v2 acceptance floor: ``observe_predict`` p99 over the
#: binary pipelined path must be at least this many times better than
#: the JSON synchronous baseline (ROADMAP item 1's "10x+ on the table"
#: claim, enforced at 2x so CI noise cannot flake it)
MIN_BINARY_PIPELINE_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def service(recorded_traces, tmp_path_factory):
    """One daemon over one recorded BT trace, shared by all rounds."""
    trace_path, _ = recorded_traces("bt", "small", True)
    sock = str(tmp_path_factory.mktemp("srv") / "oracle.sock")
    with OracleServer(sock, store=TraceStore(capacity=4)) as server:
        trace = Pythia(trace_path, mode="predict").reference
        registry = trace.registry
        events = [
            (registry.event(t).name, registry.event(t).payload)
            for t in trace.threads[0].grammar.unfold()[:STEPS]
        ]
        yield server, trace_path, events


def run_sessions(n: int, trace_path: str, sock: str, events, latency=None) -> float:
    """N concurrent observe/predict loops; returns predictions/second.

    With ``latency`` (a ``{(op, component): Histogram}`` accumulator),
    every client's per-component latency digests are folded into it via
    :meth:`Histogram.merge` — the same fold a multi-worker daemon's
    per-worker digests will need.  Each call runs under a private
    metrics registry so successive rounds stay independent.
    """
    errors: list[Exception] = []
    barrier = threading.Barrier(n + 1)
    digests: list[dict] = []
    digests_lock = threading.Lock()

    def session():
        try:
            client = PythiaClient(trace_path, socket=sock)
            barrier.wait()  # start all sessions together
            for name, payload in events:
                client.event(name, payload)
                client.predict(4)
            hists = client.timing_histograms() if latency is not None else {}
            client.finish()
            with digests_lock:
                digests.append(hists)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    prev = obs_metrics.get_registry()
    if latency is not None:
        # private registry: successive rounds must not see each other's
        # samples (throughput-only runs keep the ambient registry)
        obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    try:
        threads = [threading.Thread(target=session) for _ in range(n)]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
    finally:
        obs_metrics.set_registry(prev)
    assert not errors, errors[:3]
    if latency is not None:
        # in-process clients share one registry, so N digests may alias
        # one histogram — fold each underlying digest exactly once
        merged: set[int] = set()
        for hists in digests:
            for key, hist in hists.items():
                if id(hist) in merged:
                    continue
                merged.add(id(hist))
                acc = latency.get(key)
                if acc is None:
                    acc = latency[key] = Histogram(
                        "bench_client_request_seconds", key,
                        buckets=LATENCY_BUCKETS_S,
                    )
                acc.merge(hist)
    return n * len(events) / elapsed


def component_report(latency: dict) -> dict:
    """Merged digests -> ``{op: {component: {count, mean_us, p50_us,
    p99_us, max_us}}}`` (same shape as ``PythiaClient.timing_report``)."""
    report: dict = {}
    for (op, component), hist in sorted(latency.items()):
        snap = hist.snapshot()
        if not snap["count"]:
            continue
        report.setdefault(op, {})[component] = {
            "count": snap["count"],
            "mean_us": round(snap["sum"] / snap["count"] * 1e6, 1),
            "p50_us": round(snap["p50"] * 1e6, 1),
            "p99_us": round(snap["p99"] * 1e6, 1),
            "max_us": round(snap["max"] * 1e6, 1),
        }
    return report


def _print_components(report: dict) -> None:
    for op, comps in sorted(report.items()):
        for component in ("total", "wire", "queue", "handler"):
            row = comps.get(component)
            if row is None:
                continue
            print(f"  {op:>8s}.{component:<7s} p50 {row['p50_us']:7.1f}us  "
                  f"p99 {row['p99_us']:7.1f}us  mean {row['mean_us']:7.1f}us  "
                  f"(n={row['count']})")


@pytest.mark.parametrize("sessions", SESSIONS)
def test_throughput_by_session_count(benchmark, service, sessions):
    server, trace_path, events = service

    rate = benchmark.pedantic(
        run_sessions,
        args=(sessions, trace_path, server.socket_path, events),
        rounds=3,
        iterations=1,
    )
    print(f"\n{sessions:2d} session(s): {rate:,.0f} predictions/s")


def test_concurrency_does_not_collapse_throughput(service):
    """16 sessions must beat 1 session's aggregate rate (shared daemon,
    not a serialized bottleneck) — with generous slack for CI noise."""
    server, trace_path, events = service
    r1 = max(run_sessions(1, trace_path, server.socket_path, events) for _ in range(2))
    r16 = max(run_sessions(16, trace_path, server.socket_path, events) for _ in range(2))
    print(f"\naggregate: 1 session {r1:,.0f}/s vs 16 sessions {r16:,.0f}/s")
    assert r16 > r1 * 0.8  # adding sessions must not serialize to < 1x

    stats = server.store.snapshot()
    assert stats["misses"] == 1  # every session shared one trace load
    assert server.counters["connections_dropped"] == 0


def test_per_component_latency_is_reported(service):
    """The ``srv`` reply timing must decompose every request's latency
    into wire/queue/handler across concurrent sessions — the baseline
    ROADMAP item 1 (multi-worker daemon) is measured against."""
    server, trace_path, events = service
    latency: dict = {}
    run_sessions(4, trace_path, server.socket_path, events, latency=latency)
    report = component_report(latency)
    print("\nper-component latency (4 sessions):")
    _print_components(report)
    for op in ("observe", "predict"):
        comps = report[op]
        total = comps["total"]
        assert total["count"] == 4 * len(events)
        for component in ("wire", "queue", "handler"):
            # every reply carried srv timing: full decomposition
            assert comps[component]["count"] == total["count"]
        # components nest inside the round trip they decompose
        assert comps["queue"]["p50_us"] + comps["handler"]["p50_us"] \
            <= total["p99_us"]


# ----------------------------------------------------------------------
# subprocess load generators (multi-worker measurement)
# ----------------------------------------------------------------------
#
# Thread loadgens undersell a multi-process daemon: 64 client threads
# share one GIL, so the *clients* become the bottleneck and every
# worker count measures the same number.  For multi-worker rounds the
# driver spawns separate load-generator processes (capped at 4), each
# running a slice of the sessions, released simultaneously over stdin.

MULTI_SESSIONS = (1, 4, 16, 64)

#: floors enforced when the runner actually has cores to scale onto
MIN_MULTI_SPEEDUP_64 = 2.5  # 4 workers vs single-worker, 64 sessions
MIN_MULTI_SCALING = 1.0  # 16 sessions vs 1 session, multi-worker


def _loadgen(args) -> int:
    """Child mode: run ``--sessions`` client loops against the daemon.

    Prints ``ready`` once every session thread is parked at the start
    barrier, waits for ``go`` on stdin, runs, then emits one JSON line
    with the prediction count and elapsed wall time.
    """
    import json
    import sys

    trace = Pythia(args.trace, mode="predict").reference
    registry = trace.registry
    events = [
        (registry.event(t).name, registry.event(t).payload)
        for t in trace.threads[0].grammar.unfold()[: args.steps]
    ]
    barrier = threading.Barrier(args.sessions + 1)
    errors: list[Exception] = []

    def session(i: int) -> None:
        try:
            client = PythiaClient(
                args.trace, socket=args.socket,
                session_id=f"{args.session_prefix}-{i}",
            )
            barrier.wait()
            for name, payload in events:
                client.event(name, payload)
                client.predict(4)
            client.finish()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
            try:
                barrier.abort()
            except Exception:
                pass

    threads = [
        threading.Thread(target=session, args=(i,)) for i in range(args.sessions)
    ]
    for t in threads:
        t.start()
    print("ready", flush=True)
    sys.stdin.readline()  # the driver's "go"
    t0 = time.perf_counter()
    barrier.wait()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        print(json.dumps({"error": repr(errors[0])}), flush=True)
        return 1
    print(
        json.dumps(
            {"predictions": args.sessions * len(events), "elapsed": elapsed}
        ),
        flush=True,
    )
    return 0


def run_sessions_subproc(n: int, trace_path: str, sock: str, steps: int,
                         *, tag: str) -> float:
    """N concurrent sessions from separate loadgen processes; preds/s."""
    import json
    import os
    import subprocess
    import sys

    import repro

    proc_count = 1 if n == 1 else min(4, n)
    share = [n // proc_count + (1 if i < n % proc_count else 0)
             for i in range(proc_count)]
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + os.pathsep + existing if existing else src_dir
    children = []
    for i, sessions in enumerate(share):
        cmd = [
            sys.executable, os.path.abspath(__file__), "--loadgen",
            "--socket", sock, "--trace", trace_path,
            "--sessions", str(sessions), "--steps", str(steps),
            "--session-prefix", f"{tag}-p{i}",
        ]
        children.append(
            subprocess.Popen(cmd, env=env, stdin=subprocess.PIPE,
                             stdout=subprocess.PIPE, text=True)
        )
    try:
        for child in children:
            line = child.stdout.readline().strip()
            assert line == "ready", f"loadgen said {line!r}"
        for child in children:
            child.stdin.write("go\n")
            child.stdin.flush()
        results = [json.loads(child.stdout.readline()) for child in children]
    finally:
        for child in children:
            child.stdin.close()
            child.wait(timeout=60)
    failed = [r for r in results if "error" in r]
    assert not failed, failed
    total = sum(r["predictions"] for r in results)
    # sessions run concurrently: wall time is the slowest loadgen
    return total / max(r["elapsed"] for r in results)


def _bench_multi_worker(trace_path: str, tmp: str, workers: int, steps: int,
                        metrics_out: str | None) -> tuple[dict, list[str]]:
    """The multi-worker section of the report (+ its floor failures)."""
    import json
    import os

    from repro.server import OracleSupervisor
    from repro.server.protocol import read_frame, write_frame

    section: dict = {
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "routing": "hash",
        "sessions": {},
    }
    failures: list[str] = []

    # single-worker baseline, measured with the SAME subprocess loadgen
    sock1 = os.path.join(tmp, "single.sock")
    with OracleServer(sock1, store=TraceStore(capacity=4)):
        run_sessions_subproc(1, trace_path, sock1, steps, tag="warm1")
        single_64 = max(
            run_sessions_subproc(64, trace_path, sock1, steps, tag=f"s64-{r}")
            for r in range(2)
        )
    section["single_worker_64_sessions_per_s"] = round(single_64)
    print(f"single-worker, 64 sessions: {single_64:,.0f} predictions/s")

    sockn = os.path.join(tmp, "multi.sock")
    sup = OracleSupervisor(sockn, workers=workers, drain_deadline=2.0)
    sup.start()
    try:
        run_sessions_subproc(1, trace_path, sockn, steps, tag="warmN")
        rates: dict[int, float] = {}
        for n in MULTI_SESSIONS:
            rates[n] = max(
                run_sessions_subproc(n, trace_path, sockn, steps,
                                     tag=f"m{n}-{r}")
                for r in range(2)
            )
            section["sessions"][str(n)] = {
                "predictions_per_s": round(rates[n]),
            }
            print(f"{workers} workers, {n:2d} session(s): "
                  f"{rates[n]:,.0f} predictions/s")
        speedup = rates[64] / single_64
        scaling = rates[16] / rates[1]
        section["speedup_64_vs_single_worker"] = round(speedup, 2)
        section["scaling_16_vs_1"] = round(scaling, 2)
        print(f"speedup at 64 sessions: {speedup:.2f}x over single-worker; "
              f"multi-worker 16-vs-1 scaling {scaling:.2f}x")

        if metrics_out:
            import socket as socket_mod

            conn = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
            conn.connect(sockn)
            write_frame(conn, {"op": "metrics"})
            page = read_frame(conn)["text"]
            write_frame(conn, {"op": "stats"})
            stats = read_frame(conn)
            conn.close()
            with open(metrics_out, "w") as fh:
                fh.write(page)
            section["artifacts"] = stats["store"].get("artifacts", [])
            if len(section["artifacts"]) != 1:
                failures.append(
                    f"expected one shared grammar artifact, saw "
                    f"{section['artifacts']}"
                )
            print(f"wrote per-worker metrics snapshot to {metrics_out}")
    finally:
        sup.stop()

    # the scaling floors only mean something when the runner has cores
    # for the workers to land on; a 1-core box measures GIL relief only
    enforce = (os.cpu_count() or 1) >= 4
    section["floors_enforced"] = enforce
    if enforce:
        if speedup < MIN_MULTI_SPEEDUP_64:
            failures.append(
                f"{workers}-worker speedup at 64 sessions is {speedup:.2f}x "
                f"single-worker (< {MIN_MULTI_SPEEDUP_64}x floor)"
            )
        if scaling < MIN_MULTI_SCALING:
            failures.append(
                f"multi-worker 16-session scaling is {scaling:.2f}x "
                f"(< {MIN_MULTI_SCALING}x floor)"
            )
    else:
        print(f"floors not enforced: os.cpu_count()={os.cpu_count()} < 4")
    return section, failures


# ----------------------------------------------------------------------
# protocol comparison (json sync vs binary sync vs binary pipelined)
# ----------------------------------------------------------------------


def _pctl(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def _op_stats(samples_s: list[float]) -> dict:
    return {
        "count": len(samples_s),
        "p50_us": round(_pctl(samples_s, 0.50) * 1e6, 1),
        "p99_us": round(_pctl(samples_s, 0.99) * 1e6, 1),
        "mean_us": round(sum(samples_s) / len(samples_s) * 1e6, 1),
    }


def _sync_round(trace_path: str, sock: str, events, protocol: str,
                rounds: int) -> dict:
    """Per-op round-trip latencies of one synchronous client."""
    samples: dict[str, list[float]] = {
        "observe": [], "observe_predict": [], "predict": [],
    }
    client = PythiaClient(trace_path, socket=sock, protocol=protocol)
    try:
        for _ in range(rounds):
            for name, payload in events:
                t0 = time.perf_counter()
                client.event_and_predict(name, payload)
                samples["observe_predict"].append(time.perf_counter() - t0)
            for name, payload in events:
                t0 = time.perf_counter()
                client.event(name, payload)
                samples["observe"].append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                client.predict(4)
                samples["predict"].append(time.perf_counter() - t0)
        assert not client.degraded, "client fell back mid-benchmark"
    finally:
        client.finish()
    return {op: _op_stats(vals) for op, vals in samples.items() if vals}


def _pipelined_round(trace_path: str, sock: str, events, rounds: int,
                     window: int = 32) -> dict:
    """Amortized per-op completion times over the pipelined path.

    Pipelining has no per-request round trip, so each op is charged
    its window's wall time divided by the window size — submit
    encoding, the single send, daemon service and the reply reads all
    included.  That is the time a runtime actually waits per fused op
    when it batches ``window`` events ahead.
    """
    samples: list[float] = []
    client = PythiaClient(trace_path, socket=sock)
    try:
        for _ in range(rounds):
            with client.pipeline(window=window) as pipe:
                for start in range(0, len(events), window):
                    chunk = events[start:start + window]
                    t0 = time.perf_counter()
                    for name, payload in chunk:
                        pipe.submit(name, payload)
                    pipe.drain()
                    per_op = (time.perf_counter() - t0) / len(chunk)
                    samples.extend([per_op] * len(chunk))
        assert client._proto_state == "binary", "daemon did not negotiate v2"
        assert not client.degraded, "client fell back mid-benchmark"
    finally:
        client.finish()
    return {"observe_predict": _op_stats(samples), "window": window}


def _bench_protocols(trace_path: str, tmp: str, events,
                     protocol: str) -> tuple[dict, list[str]]:
    """The ``protocols`` section of the report (+ its floor failures).

    Measures the framings ``--protocol`` selects against one fresh
    daemon: synchronous JSON, synchronous binary, and the pipelined
    binary path; enforces the v2 acceptance floor when both framings
    were measured.
    """
    import os

    failures: list[str] = []
    # enough samples for a meaningful p99 even with the default steps
    rounds = max(1, 600 // max(1, len(events)))
    sock = os.path.join(tmp, "proto.sock")
    section: dict = {"io_mode": "eventloop", "rounds": rounds}
    with OracleServer(sock, store=TraceStore(capacity=4)):
        if protocol in ("json", "both"):
            section["json_sync"] = _sync_round(
                trace_path, sock, events, "json", rounds
            )
        if protocol in ("binary", "both"):
            section["binary_sync"] = _sync_round(
                trace_path, sock, events, "binary", rounds
            )
            section["binary_pipelined"] = _pipelined_round(
                trace_path, sock, events, rounds
            )
    for mode in ("json_sync", "binary_sync", "binary_pipelined"):
        stats = section.get(mode, {}).get("observe_predict")
        if stats:
            print(f"  {mode:>17s}.observe_predict "
                  f"p50 {stats['p50_us']:7.1f}us  p99 {stats['p99_us']:7.1f}us  "
                  f"(n={stats['count']})")
    if "json_sync" in section and "binary_pipelined" in section:
        json_p99 = section["json_sync"]["observe_predict"]["p99_us"]
        pipe_p99 = section["binary_pipelined"]["observe_predict"]["p99_us"]
        speedup = json_p99 / pipe_p99 if pipe_p99 else float("inf")
        section["pipelined_p99_speedup_vs_json_sync"] = round(speedup, 2)
        print(f"  binary pipelined p99 is {speedup:.2f}x better than "
              f"JSON sync")
        if speedup < MIN_BINARY_PIPELINE_SPEEDUP:
            failures.append(
                f"binary pipelined observe_predict p99 is only {speedup:.2f}x "
                f"better than JSON sync (< {MIN_BINARY_PIPELINE_SPEEDUP}x floor)"
            )
        bin_p99 = section.get("binary_sync", {}).get(
            "observe_predict", {}).get("p99_us")
        if bin_p99:
            section["binary_sync_p99_speedup_vs_json_sync"] = round(
                json_p99 / bin_p99, 2
            )
    return section, failures


# ----------------------------------------------------------------------
# standalone mode (CI: emits BENCH_server.json)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_server.json", help="output JSON path")
    parser.add_argument("--steps", type=int, default=STEPS)
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="also benchmark an N-worker supervisor "
                             "(0 = single-process only)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the merged per-worker metrics "
                             "exposition after the multi-worker rounds")
    parser.add_argument("--protocol", default="both",
                        choices=("json", "binary", "both"),
                        help="which wire framings the protocol-comparison "
                             "section measures (sync JSON, sync binary, "
                             "pipelined binary); 'both' also enforces the "
                             "binary-vs-JSON p99 floor")
    # internal: subprocess load-generator mode
    parser.add_argument("--loadgen", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--socket", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--trace", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--sessions", type=int, default=1, help=argparse.SUPPRESS)
    parser.add_argument("--session-prefix", default="lg", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.loadgen:
        return _loadgen(args)

    import json
    import os
    import tempfile

    from repro.experiments.harness import mpi_record_run

    report: dict = {
        "workload": f"bt small, 4 ranks, {args.steps} observe/predict "
                    "pairs per session",
        "sessions": {},
    }
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "ref.pythia")
        mpi_record_run("bt", "small", trace_path, ranks=4, seed=0,
                       timestamps=True)
        sock = os.path.join(tmp, "oracle.sock")
        with OracleServer(sock, store=TraceStore(capacity=4)) as server:
            trace = Pythia(trace_path, mode="predict").reference
            registry = trace.registry
            events = [
                (registry.event(t).name, registry.event(t).payload)
                for t in trace.threads[0].grammar.unfold()[:args.steps]
            ]
            run_sessions(1, trace_path, sock, events)  # warm the store
            rates: dict[int, float] = {}
            for n in SESSIONS:
                latency: dict = {}
                rates[n] = max(
                    run_sessions(n, trace_path, sock, events, latency=latency)
                    for _ in range(2)
                )
                comps = component_report(latency)
                report["sessions"][str(n)] = {
                    "predictions_per_s": round(rates[n]),
                    "latency_us": comps,
                }
                print(f"{n:2d} session(s): {rates[n]:,.0f} predictions/s")
                _print_components(comps)
            if server.counters["connections_dropped"]:
                failures.append("daemon dropped connections under load")
        scaling = rates[SESSIONS[-1]] / rates[SESSIONS[0]]
        report["scaling_16_vs_1"] = round(scaling, 2)
        if scaling < MIN_SCALING:
            failures.append(
                f"16-session aggregate is {scaling:.2f}x the 1-session rate "
                f"(< {MIN_SCALING}x floor)"
            )
        print("protocol comparison (one session, fresh daemon):")
        proto_section, proto_failures = _bench_protocols(
            trace_path, tmp, events, args.protocol
        )
        report["protocols"] = proto_section
        failures.extend(proto_failures)
        if args.workers and args.workers > 0:
            section, multi_failures = _bench_multi_worker(
                trace_path, tmp, args.workers, args.steps, args.metrics_out
            )
            report["multi_worker"] = section
            failures.extend(multi_failures)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if failures:
        print("FLOOR FAILURES:\n  " + "\n  ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
